// Package budget implements the training-trial budget strategies of
// §2.2/§4.3 of the paper: epoch-based, dataset-based, and the novel
// multi-budget (Algorithm 2) that grows both dimensions simultaneously
// and proportionally to the iteration, with independent caps.
package budget

import "fmt"

// Allocation is the concrete budget handed to one training trial.
type Allocation struct {
	// Epochs is the number of passes over the selected data.
	Epochs int
	// DataFraction is the portion of the training set used, in (0, 1].
	DataFraction float64
}

// Cost is the work an allocation implies, in units of full-dataset
// epochs (epochs × fraction). It drives simulated trial runtime.
func (a Allocation) Cost() float64 {
	return float64(a.Epochs) * a.DataFraction
}

// Strategy maps a successive-halving iteration level (1-based rung
// index) to a trial budget.
type Strategy interface {
	// Name identifies the strategy: "epochs", "dataset", or "multi".
	Name() string
	// At returns the allocation for iteration it >= 1.
	At(it int) Allocation
	// Saturated reports whether every dimension has reached its cap at
	// iteration it (growing further changes nothing).
	Saturated(it int) bool
}

// --- Epoch-based ----------------------------------------------------------

// EpochStrategy uses the full dataset in every trial and grows only the
// number of epochs: epochs = min(minEpochs·it, maxEpochs).
type EpochStrategy struct {
	minEpochs, maxEpochs int
}

// NewEpoch creates an epoch-based budget.
func NewEpoch(minEpochs, maxEpochs int) (*EpochStrategy, error) {
	if minEpochs < 1 || maxEpochs < minEpochs {
		return nil, fmt.Errorf("budget: invalid epoch range [%d, %d]", minEpochs, maxEpochs)
	}
	return &EpochStrategy{minEpochs: minEpochs, maxEpochs: maxEpochs}, nil
}

// Name returns "epochs".
func (e *EpochStrategy) Name() string { return "epochs" }

// At grows epochs linearly with the iteration, on the full dataset.
func (e *EpochStrategy) At(it int) Allocation {
	if it < 1 {
		it = 1
	}
	return Allocation{Epochs: minInt(e.minEpochs*it, e.maxEpochs), DataFraction: 1}
}

// Saturated reports whether the epoch cap is reached.
func (e *EpochStrategy) Saturated(it int) bool {
	return e.At(it).Epochs >= e.maxEpochs
}

// --- Dataset-based --------------------------------------------------------

// DatasetStrategy runs a single epoch per trial and grows only the data
// fraction: frac = min(minFrac·it, 1).
type DatasetStrategy struct {
	minFrac float64
}

// NewDataset creates a dataset-fraction budget.
func NewDataset(minFrac float64) (*DatasetStrategy, error) {
	if minFrac <= 0 || minFrac > 1 {
		return nil, fmt.Errorf("budget: invalid min fraction %v", minFrac)
	}
	return &DatasetStrategy{minFrac: minFrac}, nil
}

// Name returns "dataset".
func (d *DatasetStrategy) Name() string { return "dataset" }

// At grows the dataset fraction linearly, always one epoch.
func (d *DatasetStrategy) At(it int) Allocation {
	if it < 1 {
		it = 1
	}
	return Allocation{Epochs: 1, DataFraction: minFloat(d.minFrac*float64(it), 1)}
}

// Saturated reports whether the full dataset is reached.
func (d *DatasetStrategy) Saturated(it int) bool {
	return d.At(it).DataFraction >= 1
}

// --- Multi-budget (Algorithm 2) -------------------------------------------

// MultiStrategy grows epochs and dataset fraction simultaneously and
// proportionally to the iteration, each capped independently; once one
// dimension saturates, the other keeps growing until both reach their
// limits (Algorithm 2 of the paper).
type MultiStrategy struct {
	minEpochs, maxEpochs int
	minFrac              float64
}

// NewMulti creates a multi-budget strategy.
func NewMulti(minEpochs, maxEpochs int, minFrac float64) (*MultiStrategy, error) {
	if minEpochs < 1 || maxEpochs < minEpochs {
		return nil, fmt.Errorf("budget: invalid epoch range [%d, %d]", minEpochs, maxEpochs)
	}
	if minFrac <= 0 || minFrac > 1 {
		return nil, fmt.Errorf("budget: invalid min fraction %v", minFrac)
	}
	return &MultiStrategy{minEpochs: minEpochs, maxEpochs: maxEpochs, minFrac: minFrac}, nil
}

// Name returns "multi".
func (m *MultiStrategy) Name() string { return "multi" }

// At implements Algorithm 2: both dimensions grow with it, capped
// independently.
func (m *MultiStrategy) At(it int) Allocation {
	if it < 1 {
		it = 1
	}
	return Allocation{
		Epochs:       minInt(m.minEpochs*it, m.maxEpochs),
		DataFraction: minFloat(m.minFrac*float64(it), 1),
	}
}

// Saturated reports whether both dimensions have reached their caps.
func (m *MultiStrategy) Saturated(it int) bool {
	a := m.At(it)
	return a.Epochs >= m.maxEpochs && a.DataFraction >= 1
}

// --- Registry --------------------------------------------------------------

// Strategy names accepted by New.
const (
	KindEpochs  = "epochs"
	KindDataset = "dataset"
	KindMulti   = "multi"
)

// Defaults matching the running example in §4.3 of the paper: minimum 2
// epochs, maximum 10, and a 10% minimum dataset fraction.
const (
	DefaultMinEpochs = 2
	DefaultMaxEpochs = 10
	DefaultMinFrac   = 0.1
)

// New constructs a strategy by name using the paper's default
// parameters. The empty name selects multi-budget, EdgeTune's default.
func New(kind string) (Strategy, error) {
	switch kind {
	case KindEpochs:
		return NewEpoch(DefaultMinEpochs, DefaultMaxEpochs)
	case KindDataset:
		return NewDataset(DefaultMinFrac)
	case KindMulti, "":
		return NewMulti(DefaultMinEpochs, DefaultMaxEpochs, DefaultMinFrac)
	default:
		return nil, fmt.Errorf("budget: unknown strategy %q", kind)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
