package budget

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEpochStrategy(t *testing.T) {
	s, err := NewEpoch(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		it         int
		wantEpochs int
	}{
		{it: 1, wantEpochs: 2},
		{it: 2, wantEpochs: 4},
		{it: 5, wantEpochs: 10},
		{it: 9, wantEpochs: 10}, // capped
		{it: 0, wantEpochs: 2},  // clamped to 1
	}
	for _, tt := range tests {
		a := s.At(tt.it)
		if a.Epochs != tt.wantEpochs {
			t.Errorf("At(%d).Epochs = %d, want %d", tt.it, a.Epochs, tt.wantEpochs)
		}
		if a.DataFraction != 1 {
			t.Errorf("At(%d).DataFraction = %v, want 1 (epoch budget uses full data)", tt.it, a.DataFraction)
		}
	}
	if s.Saturated(1) {
		t.Error("saturated at iteration 1")
	}
	if !s.Saturated(5) {
		t.Error("not saturated once max epochs reached")
	}
}

func TestDatasetStrategy(t *testing.T) {
	s, err := NewDataset(0.1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		it       int
		wantFrac float64
	}{
		{it: 1, wantFrac: 0.1},
		{it: 5, wantFrac: 0.5},
		{it: 10, wantFrac: 1},
		{it: 20, wantFrac: 1}, // capped
	}
	for _, tt := range tests {
		a := s.At(tt.it)
		if a.DataFraction != tt.wantFrac {
			t.Errorf("At(%d).DataFraction = %v, want %v", tt.it, a.DataFraction, tt.wantFrac)
		}
		if a.Epochs != 1 {
			t.Errorf("At(%d).Epochs = %d, want 1 (dataset budget is single epoch)", tt.it, a.Epochs)
		}
	}
	if !s.Saturated(10) {
		t.Error("not saturated at full dataset")
	}
}

// TestMultiStrategyPaperExample replays the worked example of §4.3:
// minimum 2 epochs, max 10, minimum fraction 10%. The 2nd iteration is 4
// epochs on 20%, the 3rd 6 epochs on 30%; from the 5th iteration epochs
// stay at 10 while the fraction keeps growing until the 10th.
func TestMultiStrategyPaperExample(t *testing.T) {
	s, err := NewMulti(2, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		it         int
		wantEpochs int
		wantFrac   float64
	}{
		{it: 1, wantEpochs: 2, wantFrac: 0.1},
		{it: 2, wantEpochs: 4, wantFrac: 0.2},
		{it: 3, wantEpochs: 6, wantFrac: 0.3},
		{it: 5, wantEpochs: 10, wantFrac: 0.5},
		{it: 7, wantEpochs: 10, wantFrac: 0.7},
		{it: 10, wantEpochs: 10, wantFrac: 1},
		{it: 15, wantEpochs: 10, wantFrac: 1},
	}
	for _, tt := range tests {
		a := s.At(tt.it)
		if a.Epochs != tt.wantEpochs || math.Abs(a.DataFraction-tt.wantFrac) > 1e-12 {
			t.Errorf("At(%d) = {%d, %v}, want {%d, %v}",
				tt.it, a.Epochs, a.DataFraction, tt.wantEpochs, tt.wantFrac)
		}
	}
	if s.Saturated(9) {
		t.Error("saturated before fraction reaches 1")
	}
	if !s.Saturated(10) {
		t.Error("not saturated at iteration 10")
	}
}

// TestMultiCheaperThanEpochAtSameIteration encodes the paper's argument
// that a multi-budget trial does "not take as long as if we would use the
// entire [dataset] or run for a fixed number of epochs": below
// saturation its cost is strictly below the epoch budget's.
func TestMultiCheaperThanEpochAtSameIteration(t *testing.T) {
	epoch, _ := NewEpoch(2, 10)
	multi, _ := NewMulti(2, 10, 0.1)
	for it := 1; it <= 9; it++ {
		if multi.At(it).Cost() >= epoch.At(it).Cost() {
			t.Errorf("it %d: multi cost %v not below epoch cost %v",
				it, multi.At(it).Cost(), epoch.At(it).Cost())
		}
	}
}

func TestBudgetMonotonicity(t *testing.T) {
	strategies := []Strategy{
		mustStrategy(t, KindEpochs),
		mustStrategy(t, KindDataset),
		mustStrategy(t, KindMulti),
	}
	f := func(a, b uint8) bool {
		i, j := int(a%30)+1, int(b%30)+1
		if i > j {
			i, j = j, i
		}
		for _, s := range strategies {
			ai, aj := s.At(i), s.At(j)
			if ai.Epochs > aj.Epochs || ai.DataFraction > aj.DataFraction {
				return false
			}
			if ai.Cost() > aj.Cost() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAllocationBounds(t *testing.T) {
	strategies := []Strategy{
		mustStrategy(t, KindEpochs),
		mustStrategy(t, KindDataset),
		mustStrategy(t, KindMulti),
	}
	for _, s := range strategies {
		for it := 1; it <= 50; it++ {
			a := s.At(it)
			if a.Epochs < 1 {
				t.Errorf("%s At(%d).Epochs = %d < 1", s.Name(), it, a.Epochs)
			}
			if a.DataFraction <= 0 || a.DataFraction > 1 {
				t.Errorf("%s At(%d).DataFraction = %v out of (0,1]", s.Name(), it, a.DataFraction)
			}
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewEpoch(0, 10); err == nil {
		t.Error("NewEpoch(0,10) did not error")
	}
	if _, err := NewEpoch(5, 2); err == nil {
		t.Error("NewEpoch(5,2) did not error")
	}
	if _, err := NewDataset(0); err == nil {
		t.Error("NewDataset(0) did not error")
	}
	if _, err := NewDataset(1.5); err == nil {
		t.Error("NewDataset(1.5) did not error")
	}
	if _, err := NewMulti(1, 0, 0.1); err == nil {
		t.Error("NewMulti bad epochs did not error")
	}
	if _, err := NewMulti(1, 4, -1); err == nil {
		t.Error("NewMulti bad fraction did not error")
	}
}

func TestRegistry(t *testing.T) {
	for _, kind := range []string{KindEpochs, KindDataset, KindMulti, ""} {
		s, err := New(kind)
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		if kind != "" && s.Name() != kind {
			t.Errorf("New(%q).Name() = %q", kind, s.Name())
		}
	}
	if s, _ := New(""); s.Name() != KindMulti {
		t.Error("default strategy is not multi-budget")
	}
	if _, err := New("time"); err == nil {
		t.Error("unknown kind did not error")
	}
}

func TestCost(t *testing.T) {
	a := Allocation{Epochs: 4, DataFraction: 0.25}
	if got := a.Cost(); got != 1 {
		t.Errorf("Cost = %v, want 1", got)
	}
}

func mustStrategy(t *testing.T, kind string) Strategy {
	t.Helper()
	s, err := New(kind)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
