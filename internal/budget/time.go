package budget

import "fmt"

// TimeStrategy is the third budget type of §2.2: trials run under a
// wall-time cap that grows with the iteration. Because the trial
// executor works in epochs, the strategy converts its time cap into an
// epoch allowance using a caller-supplied estimate of the time one
// full-dataset epoch takes for the workload (the same conversion a
// time-budgeted tuning server performs internally).
type TimeStrategy struct {
	minSeconds, maxSeconds float64
	secondsPerEpoch        float64
	maxEpochs              int
}

// NewTime creates a duration-based budget: iteration it may spend
// min(minSeconds·it, maxSeconds) of training time, converted to whole
// epochs at secondsPerEpoch (always at least one epoch).
func NewTime(minSeconds, maxSeconds, secondsPerEpoch float64, maxEpochs int) (*TimeStrategy, error) {
	if minSeconds <= 0 || maxSeconds < minSeconds {
		return nil, fmt.Errorf("budget: invalid time range [%v, %v]", minSeconds, maxSeconds)
	}
	if secondsPerEpoch <= 0 {
		return nil, fmt.Errorf("budget: seconds per epoch %v must be positive", secondsPerEpoch)
	}
	if maxEpochs < 1 {
		return nil, fmt.Errorf("budget: max epochs %d must be >= 1", maxEpochs)
	}
	return &TimeStrategy{
		minSeconds:      minSeconds,
		maxSeconds:      maxSeconds,
		secondsPerEpoch: secondsPerEpoch,
		maxEpochs:       maxEpochs,
	}, nil
}

// Name returns "time".
func (t *TimeStrategy) Name() string { return "time" }

// At converts the iteration's time cap into an epoch allocation on the
// full dataset.
func (t *TimeStrategy) At(it int) Allocation {
	if it < 1 {
		it = 1
	}
	cap := minFloat(t.minSeconds*float64(it), t.maxSeconds)
	epochs := int(cap / t.secondsPerEpoch)
	if epochs < 1 {
		epochs = 1
	}
	if epochs > t.maxEpochs {
		epochs = t.maxEpochs
	}
	return Allocation{Epochs: epochs, DataFraction: 1}
}

// Saturated reports whether the time cap (or the epoch ceiling) is
// reached.
func (t *TimeStrategy) Saturated(it int) bool {
	if it < 1 {
		it = 1
	}
	a := t.At(it)
	return a.Epochs >= t.maxEpochs || t.minSeconds*float64(it) >= t.maxSeconds
}

var _ Strategy = (*TimeStrategy)(nil)
