package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
	"edgetune/internal/store"
)

// shard is one cluster node pair: a primary durable store the tuner
// runs against, and a follower directory the primary's WAL is shipped
// to. Jobs on a shard serialize on mu — a shard is one simulated
// machine, and the same-seed digest contract needs a deterministic
// execution order per store.
type shard struct {
	name string
	dir  string // <cluster dir>/<name>

	// reg is the shard's private registry: the primary store's
	// instruments land here, keyed apart from every other shard's, so
	// the cluster can serve a merged per-shard metrics view. Replica
	// shipping counters stay on the shared cluster registry — they
	// describe the cluster's replication fabric, not one store.
	reg *obs.Registry

	// fr is the shard's flight recorder (nil = flight disabled). It
	// outlives the primary store: a failover's promoted store keeps
	// recording into the same ring, so one dossier spans the kill, the
	// promotion, and the resumed run.
	fr *flight.Recorder

	mu sync.Mutex // serializes jobs and failover on this shard

	primary    *store.Durable
	primaryDir string // "primary" until a failover promotes "follower"
	rep        *replica

	// degraded marks a shard past its one failover: the follower seat
	// is empty, so further kills are not survivable and the kill hooks
	// stand down.
	degraded bool
}

func (s *shard) snapshotPath(sub string) string {
	return filepath.Join(s.dir, sub, "store.json")
}

// openShard creates the shard's primary/follower directories, opens
// the primary durable store with WAL shipping attached, and opens the
// follower's log for appends.
func openShard(name, dir string, snapshotEvery int, inj *fault.Injector, reg *obs.Registry, fr *flight.Recorder) (*shard, error) {
	s := &shard{name: name, dir: dir, primaryDir: "primary", reg: obs.NewRegistry(), fr: fr}
	for _, sub := range []string{"primary", "follower"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("cluster: shard %s: %w", name, err)
		}
	}
	rep, err := newReplica(s.name, s.snapshotPath("follower")+".wal", inj, reg, fr)
	if err != nil {
		return nil, err
	}
	prim, err := store.OpenDurable(store.DurableOptions{
		SnapshotPath:  s.snapshotPath("primary"),
		SnapshotEvery: snapshotEvery,
		Metrics:       s.reg,
		Shipper:       rep,
		Flight:        fr,
	})
	if err != nil {
		rep.close()
		return nil, fmt.Errorf("cluster: shard %s: %w", name, err)
	}
	s.primary = prim
	s.rep = rep
	return s, nil
}

// failover promotes the follower: the lagged backlog is drained into
// its log (catch-up replay), the deposed primary's directory is
// abandoned untouched, and a fresh durable store is opened over the
// follower's shipped WAL — a full recovery replay, exactly what a real
// standby does at promotion. The shard comes back degraded (no
// follower seat left), so at most one failover per shard. Callers hold
// s.mu.
func (s *shard) failover() error {
	if s.degraded {
		return fmt.Errorf("cluster: shard %s already failed over", s.name)
	}
	if err := s.rep.catchUp(); err != nil {
		return fmt.Errorf("cluster: shard %s catch-up: %w", s.name, err)
	}
	if err := s.rep.close(); err != nil {
		return fmt.Errorf("cluster: shard %s seal follower log: %w", s.name, err)
	}
	// The dead primary's disk stays as the kill left it: recoverable
	// evidence, never mutated after the crash.
	s.primary.Abandon()
	promoted, err := store.OpenDurable(store.DurableOptions{
		SnapshotPath: s.snapshotPath("follower"),
		Metrics:      s.reg,
		Flight:       s.fr,
	})
	if err != nil {
		return fmt.Errorf("cluster: shard %s promote follower: %w", s.name, err)
	}
	s.primary = promoted
	s.primaryDir = "follower"
	s.degraded = true
	return nil
}

// close seals the shard's stores: the primary compacts via its normal
// Close, and a still-standing follower is materialized once (open +
// close, i.e. recovery replay + compaction) to prove its shipped log
// is a complete, loadable store — the invariant the CI gate's
// store-verify pass checks on every replica directory.
func (s *shard) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	if err := s.rep.catchUp(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := s.rep.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := s.primary.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if !s.degraded {
		follower, err := store.OpenDurable(store.DurableOptions{SnapshotPath: s.snapshotPath("follower")})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %s follower replay: %w", s.name, err)
			}
		} else if err := follower.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// replica ships a primary's WAL frames to its follower's log. Ship
// runs with the primary store's mutex held, so it must only touch its
// own state. Frames are raw on-disk encodings (length, CRC, payload):
// appending them in order to the follower's WAL file yields a log the
// normal recovery path replays verbatim.
//
// The injected network faults act per frame: a partition drops the
// frame outright (the follower has a hole — harmless, because puts are
// independent and checkpoints are full-state blobs, so replay just
// resumes from an older rung), and follower lag parks frames in a FIFO
// backlog that the next successful ship — or the failover's catch-up
// pass — flushes in order, so the follower log never reorders.
type replica struct {
	shard string
	inj   *fault.Injector
	fr    *flight.Recorder

	mu      sync.Mutex
	file    store.File
	path    string
	pending [][]byte // lagged frames, FIFO
	closed  bool

	mShipped *obs.Counter
	mDropped *obs.Counter
	mLagged  *obs.Counter
}

func newReplica(shard, path string, inj *fault.Injector, reg *obs.Registry, fr *flight.Recorder) (*replica, error) {
	f, err := store.OSFS{}.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: open follower log %s: %w", path, err)
	}
	return &replica{
		shard:    shard,
		inj:      inj,
		fr:       fr,
		file:     f,
		path:     path,
		mShipped: reg.Counter("cluster.ship.shipped"),
		mDropped: reg.Counter("cluster.ship.dropped"),
		mLagged:  reg.Counter("cluster.ship.lagged"),
	}, nil
}

// Ship implements store.Shipper. Ship events ride the same
// operation-indexed clock as the primary's WAL appends (sequence as
// milliseconds), so a dossier interleaves them correctly.
func (r *replica) Ship(seq int64, frame []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	at := time.Duration(seq) * time.Millisecond
	site := "ship/" + r.shard
	if r.inj.Should(fault.NetPartition, site, int(seq)) {
		r.mDropped.Inc()
		r.fr.Record(at, flight.KindShip, r.shard, "dropped", seq, int64(len(frame)))
		return
	}
	if r.inj.Should(fault.FollowerLag, site, int(seq)) {
		r.pending = append(r.pending, append([]byte(nil), frame...))
		r.mLagged.Inc()
		r.fr.Record(at, flight.KindShip, r.shard, "lagged", seq, int64(len(frame)))
		return
	}
	r.flushLocked()
	if r.appendLocked(frame) {
		r.mShipped.Inc()
		r.fr.Record(at, flight.KindShip, r.shard, "shipped", seq, int64(len(frame)))
	}
}

// appendLocked writes one frame to the follower log. Replication is
// asynchronous by design: a follower write error only degrades the
// replica (the primary's ack already happened), it never fails the
// primary's mutation.
func (r *replica) appendLocked(frame []byte) bool {
	if _, err := r.file.Write(frame); err != nil {
		return false
	}
	if err := r.file.Sync(); err != nil {
		return false
	}
	return true
}

// flushLocked drains the lagged backlog in order.
func (r *replica) flushLocked() {
	for len(r.pending) > 0 {
		if !r.appendLocked(r.pending[0]) {
			return
		}
		r.pending = r.pending[1:]
		r.mShipped.Inc()
	}
}

// catchUp drains any lagged frames — the promotion-time catch-up
// replay, and the close-time seal.
func (r *replica) catchUp() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.flushLocked()
	if len(r.pending) > 0 {
		return fmt.Errorf("cluster: %d lagged frames stuck on %s", len(r.pending), r.path)
	}
	return r.file.Sync()
}

// close stops shipping and closes the follower log handle. Idempotent.
func (r *replica) close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.file.Close()
}
