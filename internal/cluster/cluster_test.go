package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/core"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/slo"
	"edgetune/internal/store"
	"edgetune/internal/testutil"
	"edgetune/internal/workload"
)

// jobOpts builds a fresh small job; every run needs its own workload
// instance (it carries mutable sampler state).
func jobOpts() core.Options {
	return core.Options{
		Workload:       workload.MustNew("IC", 1),
		SystemParams:   true,
		InferenceAware: true,
		InitialConfigs: 4,
		Rungs:          4,
		MaxBrackets:    2,
		InferTrials:    8,
		Seed:           7,
	}
}

// digest reduces a result to the fields the convergence contract
// covers: the winning configuration and the inference recommendation.
type digest struct {
	BestConfig   map[string]float64
	BestAccuracy float64
	BestScore    float64
	Rec          store.Entry
}

func digestOf(res core.Result) digest {
	return digest{
		BestConfig:   res.BestConfig.Clone(),
		BestAccuracy: res.BestAccuracy,
		BestScore:    res.BestScore,
		Rec:          res.Recommendation,
	}
}

func newTestCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClusterFailoverConvergence is the tentpole proof: a shard killed
// mid-bracket fails over to its WAL-shipped follower, resumes from the
// replicated rung checkpoint, and the job converges to the same
// recommendation digest as an uninterrupted unsharded same-seed run.
func TestClusterFailoverConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos suite skipped in -short mode")
	}
	testutil.CheckGoroutineLeak(t, 4)

	clean, err := core.Tune(context.Background(), jobOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := digestOf(clean)

	reg := obs.NewRegistry()
	c := newTestCluster(t, Options{
		Shards:              2,
		Seed:                11,
		KillShardAfterRungs: 2,
		Metrics:             reg,
	})
	res, err := c.Submit(context.Background(), Job{Key: "acme/IC", Opts: jobOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedOver {
		t.Fatal("shard was not killed — the chaos hook never fired")
	}
	if got := reg.Counter("cluster.failovers").Value(); got != 1 {
		t.Errorf("failovers counter = %d, want 1", got)
	}
	if got := digestOf(res.Result); !reflect.DeepEqual(got, want) {
		t.Errorf("failed-over digest diverged from unsharded run:\n got %+v\nwant %+v", got, want)
	}

	// A second same-seed submission lands on the now-degraded shard: no
	// follower is left, so the kill hook stands down and the job resumes
	// from the completed checkpoint to the same digest.
	res2, err := c.Submit(context.Background(), Job{Key: "acme/IC", Opts: jobOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FailedOver {
		t.Error("degraded shard failed over a second time")
	}
	if res2.Shard != res.Shard {
		t.Errorf("same key routed to %s after %s", res2.Shard, res.Shard)
	}
	if got := digestOf(res2.Result); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed digest diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestClusterAutoscaleSurvivesFailover: a job tuned with the
// autoscaler enabled and flash crowds injected is killed mid-bracket;
// the promoted follower rebuilds its own controller, the job still
// converges to the unsharded recommendation digest, and the autoscale
// report is surfaced on the result.
func TestClusterAutoscaleSurvivesFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos suite skipped in -short mode")
	}
	testutil.CheckGoroutineLeak(t, 4)

	withAutoscale := func() core.Options {
		opts := jobOpts()
		opts.Autoscale = &autoscale.Config{}
		opts.Fault = fault.Config{FlashCrowd: 0.3}
		return opts
	}
	clean, err := core.Tune(context.Background(), withAutoscale())
	if err != nil {
		t.Fatal(err)
	}
	want := digestOf(clean)

	c := newTestCluster(t, Options{
		Shards:              2,
		Seed:                11,
		KillShardAfterRungs: 2,
	})
	res, err := c.Submit(context.Background(), Job{Key: "acme/IC", Opts: withAutoscale()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedOver {
		t.Fatal("shard was not killed — the chaos hook never fired")
	}
	rep := res.Result.Autoscale
	if rep == nil {
		t.Fatal("autoscale report missing after failover")
	}
	if rep.ScaleUps == 0 {
		t.Error("flash crowds never drove a scale-up on the promoted shard")
	}
	if got := digestOf(res.Result); !reflect.DeepEqual(got, want) {
		t.Errorf("failed-over autoscaled digest diverged from unsharded run:\n got %+v\nwant %+v", got, want)
	}
}

// TestClusterConvergesUnderPartitionAndLag: dropped and lagged WAL
// frames on the replication link only cost the follower recency — the
// failed-over job still reaches the unsharded digest, resuming from
// whatever rung checkpoint survived shipping.
func TestClusterConvergesUnderPartitionAndLag(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos suite skipped in -short mode")
	}
	testutil.CheckGoroutineLeak(t, 4)

	clean, err := core.Tune(context.Background(), jobOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := digestOf(clean)

	reg := obs.NewRegistry()
	c := newTestCluster(t, Options{
		Shards:              2,
		Seed:                13,
		KillShardAfterRungs: 2,
		Fault:               fault.Config{NetPartition: 0.25, FollowerLag: 0.25},
		Metrics:             reg,
	})
	res, err := c.Submit(context.Background(), Job{Key: "acme/IC", Opts: jobOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedOver {
		t.Fatal("shard was not killed")
	}
	if got := digestOf(res.Result); !reflect.DeepEqual(got, want) {
		t.Errorf("lossy-replication digest diverged:\n got %+v\nwant %+v", got, want)
	}
	dropped := reg.Counter("cluster.ship.dropped").Value()
	lagged := reg.Counter("cluster.ship.lagged").Value()
	if dropped == 0 && lagged == 0 {
		t.Error("no partition/lag faults fired at 25% rates — sites or probabilities are wired wrong")
	}
	t.Logf("shipped=%d dropped=%d lagged=%d",
		reg.Counter("cluster.ship.shipped").Value(), dropped, lagged)
}

// TestClusterStoresVerifyAfterFailover: after a failover run and a
// Close, every node directory — promoted follower, abandoned primary,
// and the untouched second shard — must scrub clean.
func TestClusterStoresVerifyAfterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos suite skipped in -short mode")
	}
	testutil.CheckGoroutineLeak(t, 4)

	dir := t.TempDir()
	c := newTestCluster(t, Options{Shards: 2, Dir: dir, Seed: 11, KillShardAfterRungs: 2})
	res, err := c.Submit(context.Background(), Job{Key: "acme/IC", Opts: jobOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedOver {
		t.Fatal("shard was not killed")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	checked := 0
	for _, sub := range []string{"primary", "follower"} {
		for i := 0; i < 2; i++ {
			snap := filepath.Join(dir, fmt.Sprintf("shard%d", i), sub, "store.json")
			if _, serr := os.Stat(snap); os.IsNotExist(serr) {
				if _, werr := os.Stat(snap + ".wal"); os.IsNotExist(werr) {
					continue // node never wrote anything
				}
			}
			rep, err := store.Scrub(nil, snap, "")
			if err != nil {
				t.Fatalf("scrub %s: %v", snap, err)
			}
			if !rep.Clean {
				t.Errorf("%s not clean: %+v", snap, rep)
			}
			checked++
		}
	}
	if checked < 2 {
		t.Errorf("only %d store directories had data", checked)
	}
}

// TestClusterTenantQuota: the dispatcher's per-tenant token bucket
// rejects a bursting tenant with ErrTenantQuota (wrapping the serving
// layer's ErrRateLimited), counts the rejection per tenant, and leaves
// other tenants unaffected.
func TestClusterTenantQuota(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 4)
	reg := obs.NewRegistry()
	ev := slo.NewEvaluator()
	c := newTestCluster(t, Options{
		Shards:      2,
		TenantRate:  0.25,
		TenantBurst: 2,
		Metrics:     reg,
		SLO:         ev,
	})

	rejected := 0
	for i := 0; i < 6; i++ {
		_, err := c.Query("alice", fmt.Sprintf("IC/layers=%d", 18+i), "i7")
		switch {
		case errors.Is(err, ErrTenantQuota):
			if !errors.Is(err, core.ErrRateLimited) {
				t.Fatal("ErrTenantQuota does not wrap core.ErrRateLimited")
			}
			rejected++
		case err != nil && !errors.Is(err, store.ErrNotFound):
			t.Fatalf("unexpected query error: %v", err)
		}
	}
	if rejected == 0 {
		t.Error("six queries at rate 0.25 / burst 2 never hit the quota")
	}
	if got := reg.Counter("cluster.tenant.rejected.alice").Value(); got != int64(rejected) {
		t.Errorf("alice's rejection counter = %d, want %d", got, rejected)
	}
	// A fresh tenant starts with a full bucket regardless of alice's.
	if _, err := c.Query("bob", "IC/layers=18", "i7"); errors.Is(err, ErrTenantQuota) {
		t.Error("bob rejected though his bucket was untouched")
	}
	if got := reg.Counter("cluster.tenant.rejected.bob").Value(); got != 0 {
		t.Errorf("bob's rejection counter = %d, want 0", got)
	}

	snap := ev.Snapshot()
	found := false
	for _, o := range snap.Objectives {
		if o.Name == "cluster/tenant-admission" {
			found = true
			if o.Errors != int64(rejected) {
				t.Errorf("admission SLO errors = %d, want %d", o.Errors, rejected)
			}
		}
	}
	if !found {
		t.Error("cluster/tenant-admission objective not registered")
	}
}

// TestClusterQuotaRejectsSubmissions: the gate guards the tuning path
// too, before any shard work starts.
func TestClusterQuotaRejectsSubmissions(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 4)
	c := newTestCluster(t, Options{Shards: 1, TenantRate: 0.01, TenantBurst: 1})
	if _, err := c.Query("alice", "IC/layers=18", "i7"); errors.Is(err, ErrTenantQuota) {
		t.Fatal("first query burned no burst")
	}
	_, err := c.Submit(context.Background(), Job{Key: "k", Tenant: "alice", Opts: jobOpts()})
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("submission after burst: err = %v, want ErrTenantQuota", err)
	}
}

// TestClusterRoutesAndRunsConcurrently: keys owned by different shards
// tune in parallel, each deterministic against its own unsharded run.
func TestClusterRoutesAndRunsConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos suite skipped in -short mode")
	}
	testutil.CheckGoroutineLeak(t, 4)
	c := newTestCluster(t, Options{Shards: 4})

	// Find two keys on different shards (the ring is deterministic, so
	// this probe is too).
	keyA := "tenantA/jobA"
	keyB := ""
	for i := 0; i < 64 && keyB == ""; i++ {
		k := fmt.Sprintf("tenantB/job%d", i)
		if c.Owner(k) != c.Owner(keyA) {
			keyB = k
		}
	}
	if keyB == "" {
		t.Fatal("could not find a key on another shard")
	}

	var wg sync.WaitGroup
	results := make([]Result, 2)
	errs := make([]error, 2)
	for i, key := range []string{keyA, keyB} {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			results[i], errs[i] = c.Submit(context.Background(), Job{Key: key, Opts: jobOpts()})
		}(i, key)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if results[0].Shard == results[1].Shard {
		t.Errorf("both jobs ran on %s despite distinct ring owners", results[0].Shard)
	}
	clean, err := core.Tune(context.Background(), jobOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := digestOf(clean)
	for i := range results {
		if got := digestOf(results[i].Result); !reflect.DeepEqual(got, want) {
			t.Errorf("job %d digest diverged from unsharded run", i)
		}
	}
}

// TestClusterCloseIdempotent mirrors the PR 2 serving contract: Close
// twice returns the same error, and submissions and queries after it
// fail with ErrClusterClosed.
func TestClusterCloseIdempotent(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 4)
	c := newTestCluster(t, Options{Shards: 2})
	err1 := c.Close()
	err2 := c.Close()
	if err1 != nil || err2 != nil {
		t.Fatalf("idle close errs: %v, %v", err1, err2)
	}
	if _, err := c.Submit(context.Background(), Job{Key: "k", Opts: jobOpts()}); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("submit after close: %v, want ErrClusterClosed", err)
	}
	if _, err := c.Query("t", "sig", "i7"); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("query after close: %v, want ErrClusterClosed", err)
	}
}

// TestClusterDrainGraceful: with nothing in flight Drain returns nil
// promptly and seals every store.
func TestClusterDrainGraceful(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 4)
	c := newTestCluster(t, Options{Shards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close after drain: %v", err)
	}
}

// TestClusterDrainDeadline: an expired drain deadline cancels in-flight
// jobs (their submitters get context errors) instead of hanging.
func TestClusterDrainDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos suite skipped in -short mode")
	}
	testutil.CheckGoroutineLeak(t, 4)
	c := newTestCluster(t, Options{Shards: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	opts := jobOpts()
	opts.AfterRung = func(bracket, rung int) error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	}

	subErr := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), Job{Key: "k", Opts: opts})
		subErr <- err
	}()
	<-entered

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		drainErr <- c.Drain(ctx)
	}()
	// The drain's deadline has to expire while the job is wedged in the
	// rung hook; only then release it so the cancelled context can take
	// effect.
	time.Sleep(150 * time.Millisecond)
	close(release)

	if err := <-drainErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drain err = %v, want DeadlineExceeded", err)
	}
	if err := <-subErr; !errors.Is(err, context.Canceled) {
		t.Errorf("wedged job err = %v, want Canceled", err)
	}
}

// TestClusterDrainExpiredContext: a Drain whose context expired before
// the call skips the grace period entirely — in-flight jobs are
// cancelled, their submitters get typed errors, and Close stays
// idempotent (repeating the drain's verdict) afterwards.
func TestClusterDrainExpiredContext(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 4)
	c := newTestCluster(t, Options{Shards: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	opts := jobOpts()
	opts.AfterRung = func(bracket, rung int) error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	}

	subErr := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), Job{Key: "k", Opts: opts})
		subErr <- err
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the drain even starts
	drainErr := make(chan error, 1)
	go func() {
		drainErr <- c.Drain(ctx)
	}()
	// The expired context cancels the wedged job immediately; release
	// the rung hook so the cancellation can take effect.
	time.Sleep(100 * time.Millisecond)
	close(release)

	if err := <-drainErr; !errors.Is(err, context.Canceled) {
		t.Errorf("expired drain err = %v, want context.Canceled", err)
	}
	if err := <-subErr; !errors.Is(err, context.Canceled) {
		t.Errorf("wedged job err = %v, want Canceled", err)
	}
	err1 := c.Close()
	err2 := c.Close()
	if !errors.Is(err1, context.Canceled) || !errors.Is(err2, context.Canceled) {
		t.Errorf("close after expired drain = %v, %v, want the drain's verdict both times", err1, err2)
	}
}
