// Package cluster is the scale-out layer of the tuning service: N
// simulated nodes — each wrapping the existing tuner, inference server,
// and crash-consistent durable store — behind a dispatcher that
// consistent-hash-shards tuning jobs and serving lookups, enforces
// per-tenant quotas in front of the per-client admission control each
// node already runs, and replicates every shard's write-ahead log to a
// follower so a killed shard fails over and resumes from its last
// checkpointed rung.
//
// The correctness claim is inherited from the durability layer: a rung
// checkpoint captures the tuner's full resumable state (sampler stream
// included), and every store mutation rides the WAL that shipping
// replicates. Promotion is therefore just the normal recovery replay
// over the follower's copy of the log, and a failed-over job converges
// to the same recommendation digest as an uninterrupted same-seed run
// — the invariant the chaos gate asserts.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"edgetune/internal/core"
	"edgetune/internal/counters"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
	"edgetune/internal/obs/prof"
	"edgetune/internal/obs/slo"
	"edgetune/internal/store"
)

// ErrShardKilled is the injected death of a shard's primary node; the
// dispatcher catches it and fails over.
var ErrShardKilled = errors.New("cluster: shard primary killed")

// ErrTenantQuota is returned when a tenant's token bucket is empty. It
// wraps core.ErrRateLimited so existing rate-limit handling applies.
var ErrTenantQuota = fmt.Errorf("cluster: tenant quota exceeded: %w", core.ErrRateLimited)

// ErrClusterClosed is returned by submissions after Close/Drain.
var ErrClusterClosed = errors.New("cluster: closed")

// Options configures a Cluster.
type Options struct {
	// Shards is the node-pair count (default 2).
	Shards int
	// VirtualNodes is the consistent-hash ring's points per shard
	// (default 64).
	VirtualNodes int
	// Dir is the root directory holding every node's store; each shard
	// gets Dir/shard<i>/{primary,follower}. Required.
	Dir string
	// TenantRate and TenantBurst configure the per-tenant quota gate:
	// each tenant earns TenantRate tokens per cluster submission and
	// holds at most TenantBurst (rate 0 = no quotas, burst default 4).
	TenantRate  float64
	TenantBurst int
	// Seed drives the cluster's fault injector (decorrelated from the
	// per-job seeds).
	Seed uint64
	// Fault configures the cluster fault classes: ShardKill per rung
	// boundary, NetPartition and FollowerLag per shipped WAL frame.
	// Job-level classes belong in the job's own options instead.
	Fault fault.Config
	// KillShardAfterRungs, when positive, deterministically kills a
	// job's shard at its Nth completed rung (first job per shard only —
	// a degraded shard has no follower left and is spared). This is the
	// chaos gate's scripted kill; Fault.ShardKill is the probabilistic
	// variant.
	KillShardAfterRungs int
	// SnapshotEvery is passed to each primary store (default 256).
	SnapshotEvery int
	// Metrics receives the cluster instruments (nil = off); per-job
	// metrics stay on each job's own registry.
	Metrics *obs.Registry
	// SLO receives the "cluster/tenant-admission" objective (nil = off).
	SLO *slo.Evaluator
	// Trace receives per-job cluster spans on TrackCluster (nil = off).
	Trace *obs.Tracer
	// Flight enables a per-shard flight recorder: each shard's WAL,
	// shipping, serving, and failover events land on its own ring, and
	// Incidents aggregates the dossiers. The recorder outlives a
	// failover, so one dossier spans the kill and the resumed run.
	Flight bool
	// FlightSlots sizes each shard's ring (default flight.DefaultSlots).
	FlightSlots int
}

// Job is one tuning job routed through the dispatcher.
type Job struct {
	// Key is the sharding key (required); equal keys land on the same
	// shard and therefore share its historical store.
	Key string
	// Tenant names the submitting client for quota accounting (default
	// "default"). It is also stamped into the job's options so the
	// node's per-client admission sees the same identity.
	Tenant string
	// Opts is the job to run. Store, CheckpointPath, and AfterRung are
	// owned by the dispatcher: Store must be nil (each shard supplies
	// its durable store), and Checkpoint is forced on — failover resumes
	// from the replicated rung checkpoints.
	Opts core.Options
}

// Result is a completed cluster job.
type Result struct {
	core.Result
	// Shard is the node the job ran on.
	Shard string
	// FailedOver reports that the shard's primary was killed mid-job
	// and the job finished on the promoted follower.
	FailedOver bool
}

// Cluster is the sharded dispatcher.
type Cluster struct {
	opts   Options
	ring   *Ring
	shards map[string]*shard
	gate   *tenantGate
	inj    *fault.Injector

	mu        sync.Mutex
	inflightC map[*Job]context.CancelFunc

	wg       sync.WaitGroup
	shutMu   sync.Mutex
	shutting bool
	closedCh chan struct{}
	closeErr error

	mJobs      *obs.Counter
	mFailovers *obs.Counter

	sloAdmission *slo.Objective
}

// New opens a cluster: Shards node pairs under Dir, a populated ring,
// and the quota gate. Callers must Close (or Drain) it.
func New(opts Options) (*Cluster, error) {
	if opts.Dir == "" {
		return nil, errors.New("cluster: options need a directory")
	}
	if opts.Shards == 0 {
		opts.Shards = 2
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d must be >= 1", opts.Shards)
	}
	inj, err := fault.NewInjector(opts.Fault, opts.Seed^0x5bf03635, counters.NewResilienceOn(opts.Metrics))
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:      opts,
		ring:      NewRing(opts.VirtualNodes),
		shards:    make(map[string]*shard, opts.Shards),
		gate:      newTenantGate(opts.TenantRate, opts.TenantBurst),
		inj:       inj,
		inflightC: make(map[*Job]context.CancelFunc),
		closedCh:  make(chan struct{}),

		mJobs:      opts.Metrics.Counter("cluster.jobs"),
		mFailovers: opts.Metrics.Counter("cluster.failovers"),
	}
	if opts.SLO != nil {
		c.sloAdmission = opts.SLO.Register(slo.Spec{
			Name:        "cluster/tenant-admission",
			Description: "99% of cluster submissions clear the per-tenant quota gate",
			Target:      0.99,
		})
	}
	for i := 0; i < opts.Shards; i++ {
		name := fmt.Sprintf("shard%d", i)
		var fr *flight.Recorder
		if opts.Flight {
			slots := opts.FlightSlots
			if slots <= 0 {
				slots = flight.DefaultSlots
			}
			fr = flight.New(slots)
		}
		sh, err := openShard(name, filepath.Join(opts.Dir, name), opts.SnapshotEvery, inj, opts.Metrics, fr)
		if err != nil {
			for _, open := range c.shards {
				open.close()
			}
			return nil, err
		}
		c.shards[name] = sh
		c.ring.Add(name)
	}
	return c, nil
}

// Shards lists the shard names in ring order.
func (c *Cluster) Shards() []string { return c.ring.Nodes() }

// Owner returns the shard a key routes to.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// ShardMetrics snapshots each shard's private registry (the primary
// store's instruments), keyed by shard name. Cluster-fabric counters —
// dispatch, quotas, WAL shipping, failovers — live on the shared
// registry and are not duplicated here.
func (c *Cluster) ShardMetrics() map[string]obs.Snapshot {
	out := make(map[string]obs.Snapshot, len(c.shards))
	for name, sh := range c.shards {
		out[name] = sh.reg.Snapshot()
	}
	return out
}

// Submit runs one tuning job on the shard owning its key, failing over
// to the shard's follower if the primary is killed mid-job. Jobs on
// the same shard serialize; jobs on different shards run concurrently.
func (c *Cluster) Submit(ctx context.Context, job Job) (Result, error) {
	var res Result
	if job.Key == "" {
		return res, errors.New("cluster: job needs a sharding key")
	}
	if job.Opts.Store != nil {
		return res, errors.New("cluster: job options must not carry a store (shards own theirs)")
	}
	if job.Tenant == "" {
		job.Tenant = "default"
	}
	if ctx == nil {
		ctx = context.Background()
	}

	c.shutMu.Lock()
	if c.shutting {
		c.shutMu.Unlock()
		return res, ErrClusterClosed
	}
	c.wg.Add(1)
	c.shutMu.Unlock()
	defer c.wg.Done()

	tick, ok := c.gate.admit(job.Tenant)
	// The quota SLO runs on the gate's submission-tick clock, the same
	// operation-indexed convention the store's durability objective uses.
	c.sloAdmission.Record(time.Duration(tick)*time.Millisecond, ok)
	if !ok {
		if reg := c.opts.Metrics; reg != nil {
			reg.Counter("cluster.tenant.rejected." + job.Tenant).Inc()
		}
		return res, ErrTenantQuota
	}

	owner := c.ring.Owner(job.Key)
	sh := c.shards[owner]
	res.Shard = owner
	c.mJobs.Inc()
	if reg := c.opts.Metrics; reg != nil {
		reg.Counter("cluster." + owner + ".jobs").Inc()
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.mu.Lock()
	c.inflightC[&job] = cancel
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.inflightC, &job)
		c.mu.Unlock()
	}()

	sh.mu.Lock()
	defer sh.mu.Unlock()

	var sp *obs.Span
	if t := c.opts.Trace; t != nil {
		sp = t.Root(obs.TrackCluster, "job", hashKey(job.Key), 0,
			obs.Str("key", job.Key),
			obs.Str("tenant", job.Tenant),
			obs.Str("shard", owner))
	}

	run, err := core.Tune(jctx, c.shardOptions(sh, job, true))
	if errors.Is(err, ErrShardKilled) {
		if ferr := c.failOver(sh, sp, run.TuningDuration); ferr != nil {
			sp.End(run.TuningDuration)
			return res, ferr
		}
		res.FailedOver = true
		// The promoted store holds the replicated rung checkpoints;
		// the rerun resumes from the last one and converges to the
		// same-seed digest. No kill hook this time: the shard is
		// degraded, another death is not survivable.
		run, err = core.Tune(jctx, c.shardOptions(sh, job, false))
	}
	if sp != nil {
		sp.Set(obs.Bool("failedOver", res.FailedOver))
	}
	sp.End(run.TuningDuration)
	if err != nil {
		return res, err
	}
	res.Result = run
	return res, nil
}

// shardOptions adapts a job's options to run on sh: the shard's
// durable store, checkpointing forced on (failover depends on it), the
// tenant identity threaded to the node's admission control, and — when
// the shard still has a follower to fail over to — the kill hooks at
// rung boundaries.
func (c *Cluster) shardOptions(sh *shard, job Job, armKills bool) core.Options {
	opts := job.Opts
	opts.Store = sh.primary.Store()
	opts.Checkpoint = true
	opts.CheckpointPath = sh.snapshotPath(sh.primaryDir)
	opts.Tenant = job.Tenant
	// The shard's recorder, not a per-job one: job options are copied
	// per attempt, so the same ring survives the failover rerun and its
	// dossiers cover both halves of the job.
	opts.Flight = sh.fr
	if opts.Profile {
		// Stamp the owning shard on every pprof label set the job
		// applies, training and serving side alike. Copy-on-append: the
		// job's own slice must survive a failover rerun unchanged.
		opts.ProfLabels = append(append([]string(nil), opts.ProfLabels...),
			prof.KeyShard, sh.name)
	}
	userHook := opts.AfterRung
	if armKills && !sh.degraded {
		rungs := 0
		opts.AfterRung = func(bracket, rung int) error {
			if userHook != nil {
				if err := userHook(bracket, rung); err != nil {
					return err
				}
			}
			rungs++
			if c.opts.KillShardAfterRungs > 0 && rungs == c.opts.KillShardAfterRungs {
				return ErrShardKilled
			}
			site := fmt.Sprintf("%s/%s/b%d/r%d", sh.name, job.Key, bracket, rung)
			if c.inj.Should(fault.ShardKill, site, 0) {
				return ErrShardKilled
			}
			return nil
		}
	} else {
		opts.AfterRung = userHook
	}
	return opts
}

// failOver promotes sh's follower. Callers hold sh.mu.
func (c *Cluster) failOver(sh *shard, sp *obs.Span, at time.Duration) error {
	var fsp *obs.Span
	if sp != nil {
		fsp = sp.Child("failover", at, obs.Str("shard", sh.name))
	}
	sh.fr.Record(at, flight.KindFailover, sh.name, "kill", 0, 0)
	err := sh.failover()
	if fsp != nil {
		fsp.Set(obs.Bool("ok", err == nil))
	}
	fsp.End(at)
	if err != nil {
		return err
	}
	sh.fr.Record(at, flight.KindFailover, sh.name, "promoted", 0, 0)
	sh.fr.Trigger(flight.TriggerFailover, at, sh.name)
	c.mFailovers.Inc()
	return nil
}

// Incidents builds each shard's incident dossiers from its flight
// recorder (nil recorders contribute nothing). The metrics snapshot
// embedded in a shard's dossiers is that shard's private registry —
// the promoted store's instruments included — so the artefact is
// self-contained per shard. Call after the shard's jobs have quiesced;
// the build is non-consuming and repeatable.
func (c *Cluster) Incidents() map[string][]flight.Dossier {
	out := make(map[string][]flight.Dossier)
	for name, sh := range c.shards {
		sh.mu.Lock()
		ds := sh.fr.Dossiers(flight.Sources{Metrics: sh.reg.Snapshot()})
		sh.mu.Unlock()
		if len(ds) > 0 {
			out[name] = ds
		}
	}
	return out
}

// Query serves one historical-store lookup, routed to the shard owning
// sig — the read path of the dispatcher. It is quota-gated like a
// submission.
func (c *Cluster) Query(tenant, sig, device string) (store.Entry, error) {
	if tenant == "" {
		tenant = "default"
	}
	c.shutMu.Lock()
	if c.shutting {
		c.shutMu.Unlock()
		return store.Entry{}, ErrClusterClosed
	}
	c.shutMu.Unlock()
	tick, ok := c.gate.admit(tenant)
	c.sloAdmission.Record(time.Duration(tick)*time.Millisecond, ok)
	if !ok {
		if reg := c.opts.Metrics; reg != nil {
			reg.Counter("cluster.tenant.rejected." + tenant).Inc()
		}
		return store.Entry{}, ErrTenantQuota
	}
	sh := c.shards[c.ring.Owner(sig)]
	sh.mu.Lock()
	st := sh.primary.Store()
	sh.mu.Unlock()
	return st.Get(sig, device)
}

// Close shuts the cluster down immediately: in-flight jobs are
// cancelled and every shard's stores are sealed. Idempotent and safe
// to call concurrently. For a graceful stop, use Drain.
func (c *Cluster) Close() error {
	return c.shutdown(context.Background(), true)
}

// Drain stops the cluster gracefully: new submissions fail with
// ErrClusterClosed while in-flight jobs run to completion, then the
// shards' stores are sealed (primaries compact, surviving followers
// are materialized and verified loadable). If ctx expires first, the
// remaining jobs are cancelled; their callers receive context errors.
// Drain returns nil when everything completed within the deadline.
func (c *Cluster) Drain(ctx context.Context) error {
	return c.shutdown(ctx, false)
}

// shutdown stops the cluster once; force skips the grace period and
// cancels in-flight jobs outright (Close), otherwise ctx bounds how
// long the drain waits before doing the same — and only then is the
// context error reported.
func (c *Cluster) shutdown(ctx context.Context, force bool) error {
	c.shutMu.Lock()
	if c.shutting {
		c.shutMu.Unlock()
		<-c.closedCh
		return c.closeErr
	}
	c.shutting = true
	c.shutMu.Unlock()

	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	var err error
	if force {
		c.cancelInflight()
		<-done
	} else {
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
			c.cancelInflight()
			<-done // cancelled jobs exit promptly
		}
	}
	for _, name := range c.ring.Nodes() {
		if cerr := c.shards[name].close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	c.closeErr = err
	close(c.closedCh)
	return err
}

// cancelInflight cancels every job currently running.
func (c *Cluster) cancelInflight() {
	c.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(c.inflightC))
	for _, cancel := range c.inflightC {
		cancels = append(cancels, cancel)
	}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}
