package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes: each node owns
// VirtualNodes points on a 64-bit hash circle, and a key belongs to the
// node owning the first point at or clockwise of the key's hash. With
// enough virtual nodes the key space splits near-evenly, and removing a
// node moves only the keys it owned — the property the failover path
// and the minimal-disruption tests rely on.
//
// The ring is not goroutine-safe; the dispatcher mutates it only at
// construction and under its own lock at failover.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// node (values below 1 become 64).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// Add places node's virtual points on the ring. Adding a present node
// is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash: hashKey(fmt.Sprintf("%s#%d", node, i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so the ring is identical however nodes were
		// added (64-bit collisions are absurdly unlikely but cheap to
		// make deterministic).
		return r.points[i].node < r.points[j].node
	})
}

// Remove takes node's virtual points off the ring; its keys fall to
// their clockwise successors. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the node owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise of the circle's top
	}
	return r.points[i].node
}

// Nodes lists the ring members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// hashKey is FNV-1a with a 64-bit avalanche finalizer. Bare FNV mixes
// a string's last bytes through a single multiply, which leaves ring
// points for near-identical names ("shard0#1", "shard0#2", …)
// correlated and the key shares badly skewed; the finalizer restores
// full-width dispersion.
func hashKey(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
