package cluster

import (
	"fmt"
	"testing"
)

// ringKeys generates a deterministic key population for the property
// tests.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant%d/job-%d", i%97, i)
	}
	return keys
}

// TestRingBalance: with enough virtual nodes the key space splits
// near-evenly — no shard's share exceeds twice the smallest share.
func TestRingBalance(t *testing.T) {
	const (
		nodes  = 8
		vnodes = 128
		nkeys  = 20000
	)
	r := NewRing(vnodes)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	counts := make(map[string]int, nodes)
	for _, k := range ringKeys(nkeys) {
		counts[r.Owner(k)]++
	}
	if len(counts) != nodes {
		t.Fatalf("keys landed on %d of %d nodes", len(counts), nodes)
	}
	min, max := nkeys, 0
	for node, n := range counts {
		t.Logf("%s: %d keys", node, n)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		t.Fatal("a node owns zero keys")
	}
	if ratio := float64(max) / float64(min); ratio > 2.0 {
		t.Errorf("load imbalance %.2f exceeds the 2.0 bound (max %d, min %d)", ratio, max, min)
	}
}

// TestRingMinimalDisruption: removing a node moves only the keys it
// owned; every other key keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	const nodes = 8
	r := NewRing(128)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	keys := ringKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	const dead = "shard3"
	r.Remove(dead)
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == dead {
			t.Fatalf("key %q still owned by removed node", k)
		}
		if before[k] == dead {
			moved++
			continue // the dead node's keys must move somewhere
		}
		if after != before[k] {
			t.Errorf("key %q moved %s -> %s though its owner survived", k, before[k], after)
		}
	}
	if moved == 0 {
		t.Error("removed node owned no keys — balance test should have caught this")
	}
}

// TestRingOrderIndependent: the ring is a pure function of its member
// set, not of insertion order.
func TestRingOrderIndependent(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	names := []string{"shard0", "shard1", "shard2", "shard3"}
	for _, n := range names {
		a.Add(n)
	}
	for i := len(names) - 1; i >= 0; i-- {
		b.Add(names[i])
	}
	for _, k := range ringKeys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner of %q depends on insertion order: %s vs %s", k, ao, bo)
		}
	}
}

// TestRingEdgeCases: empty ring, duplicate adds, removing absent
// nodes.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(16)
	if got := r.Owner("anything"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	r.Add("only")
	r.Add("only") // duplicate: no-op
	if got := len(r.points); got != 16 {
		t.Errorf("duplicate add grew the ring to %d points, want 16", got)
	}
	if got := r.Owner("anything"); got != "only" {
		t.Errorf("single-node ring owner = %q, want only", got)
	}
	r.Remove("absent") // no-op
	r.Remove("only")
	if got := r.Owner("anything"); got != "" {
		t.Errorf("emptied ring owner = %q, want empty", got)
	}
}
