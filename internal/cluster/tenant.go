package cluster

import "sync"

// tenantGate is the dispatcher's per-tenant quota: the same
// deterministic token bucket the inference server's admission gate
// runs per client (internal/core/admission.go), lifted to the cluster
// frontend so one tenant's job storm cannot starve the others before
// work even reaches a shard. "Time" is the global submission tick, not
// the wall clock: each tenant's bucket refills by rate tokens per
// submission observed since its last use, capped at burst, so a fixed
// submission sequence always produces the same quota verdicts.
type tenantGate struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tick   int64
	tokens map[string]float64
	last   map[string]int64
}

// newTenantGate returns a gate admitting rate jobs per submission tick
// with the given burst capacity. rate <= 0 disables the gate (admit
// everything); burst below 1 defaults to 4.
func newTenantGate(rate float64, burst int) *tenantGate {
	if burst < 1 {
		burst = 4
	}
	return &tenantGate{
		rate:   rate,
		burst:  float64(burst),
		tokens: make(map[string]float64),
		last:   make(map[string]int64),
	}
}

// admit charges one token to tenant, reporting false when its bucket
// is empty. The returned tick is the submission's position on the
// gate's deterministic clock (for SLO event times).
func (g *tenantGate) admit(tenant string) (tick int64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tick++
	if g.rate <= 0 {
		return g.tick, true
	}
	t, seen := g.tokens[tenant]
	if !seen {
		t = g.burst // a new tenant starts with a full bucket
	} else {
		t += float64(g.tick-g.last[tenant]) * g.rate
		if t > g.burst {
			t = g.burst
		}
	}
	g.last[tenant] = g.tick
	if t < 1 {
		g.tokens[tenant] = t
		return g.tick, false
	}
	g.tokens[tenant] = t - 1
	return g.tick, true
}
