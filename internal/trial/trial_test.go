package trial

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"edgetune/internal/budget"
	"edgetune/internal/fault"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/workload"
)

func icRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(workload.MustNew("IC", 1), perfmodel.GPUProfile{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func icConfig() search.Config {
	return search.Config{
		workload.ParamLayers:     18,
		workload.ParamTrainBatch: 128,
		workload.ParamGPUs:       1,
	}
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(nil, perfmodel.GPUProfile{}, 1); err == nil {
		t.Error("nil workload accepted")
	}
	r := icRunner(t)
	if r.GPUProfile().Name != "titan-rtx" {
		t.Error("zero GPU profile did not default to Titan RTX")
	}
}

func TestRunProducesPlausibleResult(t *testing.T) {
	r := icRunner(t)
	res, err := r.Run(context.Background(), Request{
		Config: icConfig(),
		Alloc:  budget.Allocation{Epochs: 4, DataFraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy <= 0.15 || res.Accuracy > 1 {
		t.Errorf("accuracy = %v, want learnable (> chance 0.1)", res.Accuracy)
	}
	if res.Cost.Duration <= 0 || res.Cost.EnergyJ <= 0 {
		t.Errorf("cost = %+v, want positive", res.Cost)
	}
	if res.Steps <= 0 {
		t.Error("no optimiser steps recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	req := Request{Config: icConfig(), Alloc: budget.Allocation{Epochs: 2, DataFraction: 0.3}}
	a, err := icRunner(t).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := icRunner(t).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy || a.Cost != b.Cost {
		t.Errorf("same seed+request differ: %+v vs %+v", a, b)
	}
}

// TestBiggerBudgetHigherAccuracy: the learning curve must respond to the
// budget — this is the property every budget strategy exploits.
func TestBiggerBudgetHigherAccuracy(t *testing.T) {
	r := icRunner(t)
	small, err := r.Run(context.Background(), Request{
		Config: icConfig(),
		Alloc:  budget.Allocation{Epochs: 1, DataFraction: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	large, err := r.Run(context.Background(), Request{
		Config: icConfig(),
		Alloc:  budget.Allocation{Epochs: 10, DataFraction: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if large.Accuracy <= small.Accuracy {
		t.Errorf("10 epochs on full data (%.3f) not above 1 epoch on 10%% (%.3f)",
			large.Accuracy, small.Accuracy)
	}
	if large.Cost.Duration <= small.Cost.Duration {
		t.Error("bigger budget must cost more simulated time")
	}
}

// TestFullBudgetReachesTarget: a well-chosen configuration (small batch,
// the regime the tuner discovers) trained at full budget must clear the
// paper's 80% accuracy goal.
func TestFullBudgetReachesTarget(t *testing.T) {
	r := icRunner(t)
	cfg := icConfig()
	cfg[workload.ParamTrainBatch] = 32
	res, err := r.Run(context.Background(), Request{
		Config: cfg,
		Alloc:  budget.Allocation{Epochs: 10, DataFraction: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tgt := r.Workload().TargetAccuracy(); res.Accuracy < tgt {
		t.Errorf("full-budget accuracy %.3f below target %.2f", res.Accuracy, tgt)
	}
}

func TestMoreGPUsChangesCostNotAccuracy(t *testing.T) {
	r := icRunner(t)
	base := Request{Config: icConfig(), Alloc: budget.Allocation{Epochs: 2, DataFraction: 0.3}}
	multi := Request{Config: icConfig().Clone(), Alloc: base.Alloc}
	multi.Config[workload.ParamGPUs] = 8
	a, err := r.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), multi)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost == b.Cost {
		t.Error("GPU count did not change the simulated cost")
	}
}

func TestRunValidation(t *testing.T) {
	r := icRunner(t)
	ctx := context.Background()
	tests := []struct {
		name string
		req  Request
	}{
		{name: "zero epochs", req: Request{Config: icConfig(), Alloc: budget.Allocation{Epochs: 0, DataFraction: 1}}},
		{name: "bad fraction", req: Request{Config: icConfig(), Alloc: budget.Allocation{Epochs: 1, DataFraction: 0}}},
		{name: "missing batch", req: Request{Config: search.Config{workload.ParamLayers: 18}, Alloc: budget.Allocation{Epochs: 1, DataFraction: 1}}},
		{name: "bad layers", req: Request{Config: search.Config{workload.ParamLayers: 19, workload.ParamTrainBatch: 64}, Alloc: budget.Allocation{Epochs: 1, DataFraction: 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := r.Run(ctx, tt.req); err == nil {
				t.Error("invalid request accepted")
			}
		})
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	r := icRunner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx, Request{Config: icConfig(), Alloc: budget.Allocation{Epochs: 1, DataFraction: 0.1}}); err == nil {
		t.Error("cancelled context accepted")
	}
}

// countdownCtx reports cancellation after its Err method has been
// polled n times — a deterministic stand-in for "the bracket was
// cancelled while this trial was mid-training".
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestRunCancelledMidTraining: cancellation arriving after the trial
// has started must abort it between mini-batches, not after the full
// SGD run. The countdown survives the entry poll, so only the
// per-mini-batch Check can observe the cancellation.
func TestRunCancelledMidTraining(t *testing.T) {
	r := icRunner(t)
	req := Request{Config: icConfig(), Alloc: budget.Allocation{Epochs: 8, DataFraction: 1}}

	_, err := r.Run(newCountdownCtx(2), req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-training cancellation not honoured: err = %v", err)
	}
}

func TestRunRetryAttemptReseeds(t *testing.T) {
	r := icRunner(t)
	req := Request{Config: icConfig(), Alloc: budget.Allocation{Epochs: 2, DataFraction: 0.3}}
	a, err := r.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Attempt = 1
	b, err := r.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy == b.Accuracy {
		t.Error("retry attempt did not reseed training")
	}
}

func setInjector(t *testing.T, r *Runner, cfg fault.Config) {
	t.Helper()
	in, err := fault.NewInjector(cfg, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetFaultInjector(in)
}

func trialReq() Request {
	return Request{Config: icConfig(), Alloc: budget.Allocation{Epochs: 2, DataFraction: 0.3}}
}

func TestRunInjectedCrashChargesPartialCost(t *testing.T) {
	r := icRunner(t)
	setInjector(t, r, fault.Config{TrialCrash: 1})
	res, err := r.Run(context.Background(), trialReq())
	if fault.ClassOf(err) != fault.TrialCrash {
		t.Fatalf("err = %v, want injected crash", err)
	}
	if res.Cost.Duration <= 0 || res.Cost.EnergyJ <= 0 {
		t.Error("crashed attempt charged no cost")
	}
	clean, err := icRunner(t).Run(context.Background(), trialReq())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Duration >= clean.Cost.Duration {
		t.Errorf("crashed cost %v not below full cost %v", res.Cost.Duration, clean.Cost.Duration)
	}
}

func TestRunInjectedNaNChargesFullCost(t *testing.T) {
	r := icRunner(t)
	setInjector(t, r, fault.Config{TrialNaN: 1})
	res, err := r.Run(context.Background(), trialReq())
	if fault.ClassOf(err) != fault.TrialNaN {
		t.Fatalf("err = %v, want injected NaN divergence", err)
	}
	clean, cerr := icRunner(t).Run(context.Background(), trialReq())
	if cerr != nil {
		t.Fatal(cerr)
	}
	if res.Cost != clean.Cost {
		t.Errorf("diverged run cost %+v, want full cost %+v", res.Cost, clean.Cost)
	}
}

func TestRunInjectedStragglerInflatesCost(t *testing.T) {
	r := icRunner(t)
	setInjector(t, r, fault.Config{Straggler: 1, StragglerFactor: 3})
	res, err := r.Run(context.Background(), trialReq())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Straggled {
		t.Fatal("p=1 straggler did not fire")
	}
	clean, err := icRunner(t).Run(context.Background(), trialReq())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != clean.Accuracy {
		t.Error("straggler changed the training outcome")
	}
	if res.Cost.Duration <= clean.Cost.Duration || res.Cost.Duration > 3*clean.Cost.Duration+time.Microsecond {
		t.Errorf("straggler cost %v vs clean %v outside (1,3]x", res.Cost.Duration, clean.Cost.Duration)
	}
}

func TestAllWorkloadsRunnable(t *testing.T) {
	configs := map[string]search.Config{
		"IC":  {workload.ParamLayers: 34, workload.ParamTrainBatch: 64},
		"SR":  {workload.ParamEmbedDim: 64, workload.ParamTrainBatch: 64},
		"NLP": {workload.ParamStride: 2, workload.ParamTrainBatch: 64},
		"OD":  {workload.ParamDropout: 0.2, workload.ParamTrainBatch: 64},
	}
	for _, id := range workload.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, err := NewRunner(workload.MustNew(id, 1), perfmodel.GPUProfile{}, 7)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run(context.Background(), Request{
				Config: configs[id],
				Alloc:  budget.Allocation{Epochs: 6, DataFraction: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			chance := 1 / float64(r.Workload().Split.Test.Classes)
			if res.Accuracy < 1.5*chance {
				t.Errorf("accuracy %.3f below 1.5x chance", res.Accuracy)
			}
		})
	}
}
