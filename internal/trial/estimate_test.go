package trial

import (
	"context"
	"math"
	"testing"

	"edgetune/internal/budget"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/workload"
)

func TestEstimateEpochSecondsMatchesTrialCharge(t *testing.T) {
	w := workload.MustNew("IC", 1)
	cfg := search.Config{
		workload.ParamLayers:     18,
		workload.ParamTrainBatch: 128,
		workload.ParamGPUs:       1,
	}
	perEpoch, err := EstimateEpochSeconds(w, cfg, perfmodel.GPUProfile{})
	if err != nil {
		t.Fatal(err)
	}
	if perEpoch <= 0 {
		t.Fatal("non-positive estimate")
	}
	// A 4-epoch full-data trial should charge ~4x the per-epoch estimate.
	r, err := NewRunner(w, perfmodel.GPUProfile{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), Request{
		Config: cfg,
		Alloc:  budget.Allocation{Epochs: 4, DataFraction: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Cost.Duration.Seconds() / perEpoch
	if math.Abs(ratio-4) > 0.2 {
		t.Errorf("4-epoch trial charged %.2fx the per-epoch estimate, want ~4x", ratio)
	}
}

func TestEstimateEpochSecondsDefaults(t *testing.T) {
	w := workload.MustNew("OD", 1)
	// Missing batch/gpus use defaults rather than erroring.
	perEpoch, err := EstimateEpochSeconds(w, search.Config{workload.ParamDropout: 0.3}, perfmodel.GPUProfile{})
	if err != nil {
		t.Fatal(err)
	}
	if perEpoch <= 0 {
		t.Error("defaulted estimate not positive")
	}
	if _, err := EstimateEpochSeconds(w, search.Config{}, perfmodel.GPUProfile{}); err == nil {
		t.Error("config without model param accepted")
	}
}

// TestTimeBudgetIntegration wires the paper's third budget type end to
// end: a TimeStrategy built from the epoch estimate produces
// allocations a trial can run.
func TestTimeBudgetIntegration(t *testing.T) {
	w := workload.MustNew("IC", 1)
	cfg := search.Config{
		workload.ParamLayers:     18,
		workload.ParamTrainBatch: 64,
		workload.ParamGPUs:       1,
	}
	perEpoch, err := EstimateEpochSeconds(w, cfg, perfmodel.GPUProfile{})
	if err != nil {
		t.Fatal(err)
	}
	strat, err := budget.NewTime(perEpoch, 10*perEpoch, perEpoch, 10)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w, perfmodel.GPUProfile{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for it := 1; it <= 4; it++ {
		alloc := strat.At(it)
		res, err := r.Run(context.Background(), Request{Config: cfg, Alloc: alloc})
		if err != nil {
			t.Fatalf("it %d: %v", it, err)
		}
		// The trial's charged time must respect the iteration's cap
		// (within one epoch of rounding).
		cap := perEpoch * float64(it+1)
		if res.Cost.Duration.Seconds() > cap {
			t.Errorf("it %d: trial took %.0fs, cap %.0fs", it, res.Cost.Duration.Seconds(), cap)
		}
	}
}
