package trial

import (
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/workload"
)

// EstimateEpochSeconds predicts the simulated duration of one
// full-dataset training epoch for a configuration — the conversion
// factor a duration-based budget (budget.NewTime, the paper's third
// budget type) needs to translate its time caps into epoch allowances.
func EstimateEpochSeconds(w *workload.Workload, cfg search.Config, gpu perfmodel.GPUProfile) (float64, error) {
	if gpu.FlopsPerSec == 0 {
		gpu = perfmodel.TitanRTX()
	}
	flops, params, err := w.PaperCost(cfg)
	if err != nil {
		return 0, err
	}
	batch := int(cfg[workload.ParamTrainBatch])
	if batch < 1 {
		batch = 128
	}
	gpus := 1
	if g, ok := cfg[workload.ParamGPUs]; ok && g >= 1 {
		gpus = int(g)
	}
	cost, err := perfmodel.TrainingCost(perfmodel.TrainSpec{
		FLOPsPerSample: flops,
		Params:         params,
		Samples:        w.Split.Train.PaperSamples(),
		Epochs:         1,
		BatchSize:      batch,
		GPUs:           gpus,
	}, gpu)
	if err != nil {
		return 0, err
	}
	return cost.Duration.Seconds(), nil
}
