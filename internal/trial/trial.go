// Package trial executes one training trial: it applies a budget
// allocation to the workload's dataset, genuinely trains the model with
// mini-batch SGD, evaluates accuracy on the held-out set, and charges
// simulated runtime and energy through the performance model — the unit
// of work the Model Tuning Server schedules.
package trial

import (
	"context"
	"fmt"
	"time"

	"edgetune/internal/budget"
	"edgetune/internal/fault"
	"edgetune/internal/nn"
	"edgetune/internal/obs"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/sim"
	"edgetune/internal/workload"
)

// Runner executes trials for one workload on one training platform.
type Runner struct {
	workload *workload.Workload
	gpu      perfmodel.GPUProfile
	seed     uint64
	// lr and momentum are the fixed optimiser settings; the paper tunes
	// batch size, not the learning rate, in its evaluation (§5.1).
	lr, momentum float64
	// injector optionally injects crash/NaN/straggler faults (nil =
	// none).
	injector *fault.Injector
}

// NewRunner creates a trial runner. The GPU profile defaults to the
// paper's Titan RTX testbed when zero-valued.
func NewRunner(w *workload.Workload, gpu perfmodel.GPUProfile, seed uint64) (*Runner, error) {
	if w == nil {
		return nil, fmt.Errorf("trial: nil workload")
	}
	if gpu.FlopsPerSec == 0 {
		gpu = perfmodel.TitanRTX()
	}
	return &Runner{workload: w, gpu: gpu, seed: seed, lr: 0.018, momentum: 0.9}, nil
}

// SetFaultInjector arms the runner with a fault injector; trials then
// crash, diverge, or straggle according to the injector's seeded
// decisions.
func (r *Runner) SetFaultInjector(in *fault.Injector) { r.injector = in }

// Request describes one trial.
type Request struct {
	// Config holds the model hyperparameter, training batch size, and
	// (in onefold mode) the GPU count.
	Config search.Config
	// Alloc is the budget the trial may consume.
	Alloc budget.Allocation
	// Attempt is the zero-based retry attempt. Each attempt re-rolls
	// the fault decisions and reseeds training, so a retried trial is
	// a genuine re-run rather than a deterministic repeat of the
	// failure.
	Attempt int
	// Span, when non-nil, receives epoch and mini-batch child spans on
	// the simulated timeline, placed relative to Start (the attempt's
	// start on the tuner's clock).
	Span *obs.Span
	// Start is the attempt's simulated start time; see Span.
	Start time.Duration
}

// site identifies the request for fault decisions: the same config
// retried at the same budget re-rolls via Attempt, while different
// rungs of the same config are independent sites.
func (req Request) site() string {
	return fmt.Sprintf("%s|e%d|f%g", req.Config.Key(), req.Alloc.Epochs, req.Alloc.DataFraction)
}

// Result reports what a trial achieved and what it cost.
type Result struct {
	// Accuracy on the held-out evaluation set.
	Accuracy float64
	// Cost is the simulated (duration, energy) of the trial at paper
	// scale. On an injected failure, Cost carries what the failed
	// attempt consumed before dying, so the tuner can charge retries
	// to the budget.
	Cost perfmodel.Cost
	// Steps is the number of optimiser steps actually taken.
	Steps int
	// Alloc echoes the budget consumed.
	Alloc budget.Allocation
	// Straggled reports an injected slowdown (the result is valid but
	// its cost is inflated).
	Straggled bool
}

// Workload exposes the runner's workload.
func (r *Runner) Workload() *workload.Workload { return r.workload }

// GPUProfile exposes the runner's training platform.
func (r *Runner) GPUProfile() perfmodel.GPUProfile { return r.gpu }

// Run executes one trial. Training is deterministic given the runner
// seed and the request (config + allocation + attempt). Cancellation is
// honoured between mini-batches, not only at entry, so an abandoned
// bracket stops paying for its in-flight trial promptly.
func (r *Runner) Run(ctx context.Context, req Request) (Result, error) {
	var res Result
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if req.Alloc.Epochs < 1 {
		return res, fmt.Errorf("trial: allocation has %d epochs", req.Alloc.Epochs)
	}
	if req.Alloc.DataFraction <= 0 || req.Alloc.DataFraction > 1 {
		return res, fmt.Errorf("trial: allocation fraction %v out of (0,1]", req.Alloc.DataFraction)
	}
	batch := int(req.Config[workload.ParamTrainBatch])
	if batch < 1 {
		return res, fmt.Errorf("trial: config missing %s", workload.ParamTrainBatch)
	}
	gpus := 1
	if g, ok := req.Config[workload.ParamGPUs]; ok {
		gpus = int(g)
	}

	flops, params, err := r.workload.PaperCost(req.Config)
	if err != nil {
		return res, err
	}

	// Injected crash: the trial dies a deterministic fraction of the
	// way through. The dead attempt still charges that fraction of its
	// projected cost (preempted workers bill for the time they held),
	// and the actual SGD run is skipped.
	site := req.site()
	if ferr := r.injector.Fail(fault.TrialCrash, site, req.Attempt); ferr != nil {
		cost, cerr := r.projectedCost(flops, params, req, batch, gpus)
		if cerr != nil {
			return res, cerr
		}
		frac := 0.05 + 0.9*r.injector.Uniform("crash/"+site, req.Attempt)
		res.Cost = perfmodel.Cost{
			Duration: scaleDuration(cost.Duration, frac),
			EnergyJ:  cost.EnergyJ * frac,
		}
		res.Alloc = req.Alloc
		return res, ferr
	}

	// XOR-folding the attempt into the seed keeps attempt 0 identical
	// to the pre-resilience behaviour while giving retries fresh
	// initialisation and shuffling.
	rng := sim.NewRNG(r.seed ^ hashString(req.Config.Key()) ^ (uint64(req.Attempt) * 0xa5a5b5b5c5c5d5d5))
	net, err := r.workload.BuildModel(req.Config, rng)
	if err != nil {
		return res, err
	}
	train, test, err := r.workload.Data(req.Config)
	if err != nil {
		return res, err
	}
	sub, err := train.Subset(req.Alloc.DataFraction)
	if err != nil {
		return res, err
	}

	// The synthetic dataset is downscaled but trials keep the paper's
	// mini-batch size, so each epoch takes proportionally fewer
	// optimiser steps. That scarcity is what gives the paper's budget
	// dimensions their distinct roles: a single epoch (the dataset
	// budget's regime) cannot converge regardless of the data fraction,
	// while added epochs buy real accuracy.
	simBatch := batch
	if simBatch > sub.Len() {
		simBatch = sub.Len()
	}
	// A fixed step size across the paper's 32-512 batch sweep: larger
	// batches take fewer (not larger) steps per epoch, which is what
	// makes the batch-size hyperparameter matter to the tuner.
	lr := r.lr
	stats, err := nn.Train(net, sub.X, sub.Labels, nn.TrainConfig{
		Epochs:    req.Alloc.Epochs,
		BatchSize: simBatch,
		LR:        lr,
		Momentum:  r.momentum,
		Shuffle:   true,
		Check:     ctx.Err,
	}, rng)
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	cost, err := perfmodel.TrainingCost(perfmodel.TrainSpec{
		FLOPsPerSample: flops,
		Params:         params,
		Samples:        sub.PaperSamples(),
		Epochs:         req.Alloc.Epochs,
		BatchSize:      batch,
		GPUs:           gpus,
	}, r.gpu)
	if err != nil {
		return res, err
	}

	// Injected NaN divergence: the run consumed its whole budget and
	// produced garbage.
	if ferr := r.injector.Fail(fault.TrialNaN, site, req.Attempt); ferr != nil {
		res.Cost = cost
		res.Alloc = req.Alloc
		res.Steps = stats.Steps
		return res, ferr
	}

	// Injected straggler: the result stands but arrives late (and
	// hot), modelling flapping thermal throttling or a slow worker.
	if r.injector.Should(fault.Straggler, site, req.Attempt) {
		factor := r.injector.StragglerFactor(site, req.Attempt)
		cost.Duration = scaleDuration(cost.Duration, factor)
		cost.EnergyJ *= factor
		res.Straggled = true
	}

	res.Accuracy = net.Accuracy(test.X, test.Labels)
	res.Cost = cost
	res.Steps = stats.Steps
	res.Alloc = req.Alloc
	stepsPerEpoch := (sub.Len() + simBatch - 1) / simBatch
	emitTrainingSpans(req.Span, req.Start, cost.Duration, req.Alloc.Epochs, stepsPerEpoch)
	return res, nil
}

// emitTrainingSpans synthesises the training timeline under an attempt
// span: one "epoch" child per budgeted epoch, each holding its
// "mini-batch" children, with the attempt's (post-straggler) simulated
// duration divided evenly. Only successful attempts emit them — crashed
// and diverged runs end at the attempt span itself. The per-epoch step
// count is capped so pathological allocations cannot flood the tracer.
func emitTrainingSpans(sp *obs.Span, start, dur time.Duration, epochs, stepsPerEpoch int) {
	if sp == nil || epochs < 1 || stepsPerEpoch < 1 {
		return
	}
	const maxSteps = 64 // mini-batch spans per epoch beyond this coalesce
	coalesce := 1
	if stepsPerEpoch > maxSteps {
		coalesce = (stepsPerEpoch + maxSteps - 1) / maxSteps
	}
	epochDur := dur / time.Duration(epochs)
	for e := 0; e < epochs; e++ {
		eStart := start + time.Duration(e)*epochDur
		eEnd := start + time.Duration(e+1)*epochDur
		if e == epochs-1 {
			eEnd = start + dur // absorb integer-division remainder
		}
		esp := sp.Child("epoch", eStart, obs.Int("epoch", int64(e)))
		groups := (stepsPerEpoch + coalesce - 1) / coalesce
		span := eEnd - eStart
		for g := 0; g < groups; g++ {
			gStart := eStart + time.Duration(g)*span/time.Duration(groups)
			gEnd := eStart + time.Duration(g+1)*span/time.Duration(groups)
			first := g * coalesce
			last := first + coalesce
			if last > stepsPerEpoch {
				last = stepsPerEpoch
			}
			msp := esp.Child("mini-batch", gStart,
				obs.Int("step", int64(first)),
				obs.Int("steps", int64(last-first)))
			msp.End(gEnd)
		}
		esp.End(eEnd)
	}
}

// projectedCost is the full simulated cost this request would have
// charged, used to bill partial work for crashed attempts.
func (r *Runner) projectedCost(flops, params float64, req Request, batch, gpus int) (perfmodel.Cost, error) {
	train, _, err := r.workload.Data(req.Config)
	if err != nil {
		return perfmodel.Cost{}, err
	}
	sub, err := train.Subset(req.Alloc.DataFraction)
	if err != nil {
		return perfmodel.Cost{}, err
	}
	return perfmodel.TrainingCost(perfmodel.TrainSpec{
		FLOPsPerSample: flops,
		Params:         params,
		Samples:        sub.PaperSamples(),
		Epochs:         req.Alloc.Epochs,
		BatchSize:      batch,
		GPUs:           gpus,
	}, r.gpu)
}

// scaleDuration multiplies a duration by a float factor.
func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// hashString is FNV-1a, used to derive per-config training seeds.
func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
