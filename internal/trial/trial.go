// Package trial executes one training trial: it applies a budget
// allocation to the workload's dataset, genuinely trains the model with
// mini-batch SGD, evaluates accuracy on the held-out set, and charges
// simulated runtime and energy through the performance model — the unit
// of work the Model Tuning Server schedules.
package trial

import (
	"context"
	"fmt"

	"edgetune/internal/budget"
	"edgetune/internal/nn"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/sim"
	"edgetune/internal/workload"
)

// Runner executes trials for one workload on one training platform.
type Runner struct {
	workload *workload.Workload
	gpu      perfmodel.GPUProfile
	seed     uint64
	// lr and momentum are the fixed optimiser settings; the paper tunes
	// batch size, not the learning rate, in its evaluation (§5.1).
	lr, momentum float64
}

// NewRunner creates a trial runner. The GPU profile defaults to the
// paper's Titan RTX testbed when zero-valued.
func NewRunner(w *workload.Workload, gpu perfmodel.GPUProfile, seed uint64) (*Runner, error) {
	if w == nil {
		return nil, fmt.Errorf("trial: nil workload")
	}
	if gpu.FlopsPerSec == 0 {
		gpu = perfmodel.TitanRTX()
	}
	return &Runner{workload: w, gpu: gpu, seed: seed, lr: 0.018, momentum: 0.9}, nil
}

// Request describes one trial.
type Request struct {
	// Config holds the model hyperparameter, training batch size, and
	// (in onefold mode) the GPU count.
	Config search.Config
	// Alloc is the budget the trial may consume.
	Alloc budget.Allocation
}

// Result reports what a trial achieved and what it cost.
type Result struct {
	// Accuracy on the held-out evaluation set.
	Accuracy float64
	// Cost is the simulated (duration, energy) of the trial at paper
	// scale.
	Cost perfmodel.Cost
	// Steps is the number of optimiser steps actually taken.
	Steps int
	// Alloc echoes the budget consumed.
	Alloc budget.Allocation
}

// Workload exposes the runner's workload.
func (r *Runner) Workload() *workload.Workload { return r.workload }

// GPUProfile exposes the runner's training platform.
func (r *Runner) GPUProfile() perfmodel.GPUProfile { return r.gpu }

// Run executes one trial. Training is deterministic given the runner
// seed and the request (config + allocation).
func (r *Runner) Run(ctx context.Context, req Request) (Result, error) {
	var res Result
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if req.Alloc.Epochs < 1 {
		return res, fmt.Errorf("trial: allocation has %d epochs", req.Alloc.Epochs)
	}
	if req.Alloc.DataFraction <= 0 || req.Alloc.DataFraction > 1 {
		return res, fmt.Errorf("trial: allocation fraction %v out of (0,1]", req.Alloc.DataFraction)
	}
	batch := int(req.Config[workload.ParamTrainBatch])
	if batch < 1 {
		return res, fmt.Errorf("trial: config missing %s", workload.ParamTrainBatch)
	}
	gpus := 1
	if g, ok := req.Config[workload.ParamGPUs]; ok {
		gpus = int(g)
	}

	rng := sim.NewRNG(r.seed ^ hashString(req.Config.Key()))
	net, err := r.workload.BuildModel(req.Config, rng)
	if err != nil {
		return res, err
	}
	train, test, err := r.workload.Data(req.Config)
	if err != nil {
		return res, err
	}
	sub, err := train.Subset(req.Alloc.DataFraction)
	if err != nil {
		return res, err
	}

	// The synthetic dataset is downscaled but trials keep the paper's
	// mini-batch size, so each epoch takes proportionally fewer
	// optimiser steps. That scarcity is what gives the paper's budget
	// dimensions their distinct roles: a single epoch (the dataset
	// budget's regime) cannot converge regardless of the data fraction,
	// while added epochs buy real accuracy.
	simBatch := batch
	if simBatch > sub.Len() {
		simBatch = sub.Len()
	}
	// A fixed step size across the paper's 32-512 batch sweep: larger
	// batches take fewer (not larger) steps per epoch, which is what
	// makes the batch-size hyperparameter matter to the tuner.
	lr := r.lr
	stats, err := nn.Train(net, sub.X, sub.Labels, nn.TrainConfig{
		Epochs:    req.Alloc.Epochs,
		BatchSize: simBatch,
		LR:        lr,
		Momentum:  r.momentum,
		Shuffle:   true,
	}, rng)
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	flops, params, err := r.workload.PaperCost(req.Config)
	if err != nil {
		return res, err
	}
	cost, err := perfmodel.TrainingCost(perfmodel.TrainSpec{
		FLOPsPerSample: flops,
		Params:         params,
		Samples:        sub.PaperSamples(),
		Epochs:         req.Alloc.Epochs,
		BatchSize:      batch,
		GPUs:           gpus,
	}, r.gpu)
	if err != nil {
		return res, err
	}

	res.Accuracy = net.Accuracy(test.X, test.Labels)
	res.Cost = cost
	res.Steps = stats.Steps
	res.Alloc = req.Alloc
	return res, nil
}

// hashString is FNV-1a, used to derive per-config training seeds.
func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
