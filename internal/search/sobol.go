package search

import (
	"math"
	"sync"
)

// HaltonSampler is a quasi-random (low-discrepancy) variant of random
// search: successive points fill the space far more evenly than
// pseudo-random draws, which improves small-budget coverage — a common
// upgrade over the paper's plain random-search option. Dimension d uses
// the radical-inverse sequence in the d-th prime base, with a fixed
// offset so different seeds produce different (but still
// low-discrepancy) streams.
type HaltonSampler struct {
	mu    sync.Mutex
	space *Space
	index int
	bases []int
}

// first primes used as Halton bases; spaces wider than this fall back
// to re-using bases with index scrambling.
var haltonPrimes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}

// NewHaltonSampler creates a low-discrepancy sampler over space. seed
// offsets the sequence start.
func NewHaltonSampler(space *Space, seed uint64) *HaltonSampler {
	bases := make([]int, space.Dim())
	for i := range bases {
		bases[i] = haltonPrimes[i%len(haltonPrimes)]
	}
	return &HaltonSampler{
		space: space,
		// Skip the degenerate early prefix and decorrelate seeds.
		index: 20 + int(seed%1000),
		bases: bases,
	}
}

// Name returns "halton".
func (h *HaltonSampler) Name() string { return "halton" }

// Sample returns the next low-discrepancy point mapped into the space.
func (h *HaltonSampler) Sample() Config {
	h.mu.Lock()
	idx := h.index
	h.index++
	h.mu.Unlock()

	u := make([]float64, h.space.Dim())
	for d := range u {
		u[d] = radicalInverse(idx, h.bases[d])
	}
	cfg, err := h.space.FromUnit(u)
	if err != nil {
		// FromUnit only fails on dimension mismatch, which cannot
		// happen here; return an empty config defensively.
		return Config{}
	}
	return cfg
}

// Observe is a no-op: quasi-random search does not learn.
func (h *HaltonSampler) Observe(Observation) {}

// SamplerState implements Resumable: the state is the sequence index.
func (h *HaltonSampler) SamplerState() SamplerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return SamplerState{Cursor: h.index}
}

// RestoreSamplerState implements Resumable.
func (h *HaltonSampler) RestoreSamplerState(s SamplerState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.index = s.Cursor
}

// radicalInverse computes the base-b van der Corput radical inverse of n.
func radicalInverse(n, base int) float64 {
	var (
		inv    = 1 / float64(base)
		factor = inv
		result float64
	)
	for n > 0 {
		result += float64(n%base) * factor
		n /= base
		factor *= inv
	}
	if result >= 1 {
		result = math.Nextafter(1, 0)
	}
	return result
}

// AlgoHalton names the quasi-random strategy in the registry.
const AlgoHalton = "halton"

var _ Sampler = (*HaltonSampler)(nil)
