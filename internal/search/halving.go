package search

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Evaluator scores a configuration at a rung's budget level. Lower is
// better. budget is an abstract fidelity in (0, 1] interpreted by the
// caller (epoch count, dataset fraction, or both for multi-budget).
type Evaluator func(ctx context.Context, cfg Config, rung int, budget float64) (float64, error)

// HalvingOptions parameterise successive halving (§2.2 of the paper).
type HalvingOptions struct {
	// Eta is the reduction factor η: 1/η of configurations survive each
	// rung. Must be >= 2.
	Eta int
	// InitialConfigs is the population of the first rung.
	InitialConfigs int
	// Rungs is the number of promotion rounds.
	Rungs int
	// BudgetAt maps a rung index (0-based) to the fidelity passed to the
	// evaluator. If nil, a geometric schedule budget = η^(rung-Rungs+1)
	// is used, reaching 1.0 at the final rung.
	BudgetAt func(rung int) float64
}

func (o HalvingOptions) validate() error {
	if o.Eta < 2 {
		return fmt.Errorf("search: eta %d must be >= 2", o.Eta)
	}
	if o.InitialConfigs < 1 {
		return fmt.Errorf("search: initial configs %d must be >= 1", o.InitialConfigs)
	}
	if o.Rungs < 1 {
		return fmt.Errorf("search: rungs %d must be >= 1", o.Rungs)
	}
	return nil
}

func (o HalvingOptions) budgetAt(rung int) float64 {
	if o.BudgetAt != nil {
		return o.BudgetAt(rung)
	}
	return math.Pow(float64(o.Eta), float64(rung-o.Rungs+1))
}

// Result is the outcome of a completed search.
type Result struct {
	Best    Observation
	History []Observation
	// TrialsRun counts evaluator invocations.
	TrialsRun int
}

// SuccessiveHalving runs the multi-fidelity halving loop: rung 0 draws
// InitialConfigs from the sampler at the smallest budget; each subsequent
// rung re-evaluates the best 1/η at a larger budget. Every evaluation is
// fed back to the sampler, so a TPE sampler refines its model as rungs
// progress (this combination is BOHB).
func SuccessiveHalving(ctx context.Context, sampler Sampler, eval Evaluator, opts HalvingOptions) (Result, error) {
	var res Result
	if err := opts.validate(); err != nil {
		return res, err
	}
	type entry struct {
		cfg   Config
		score float64
	}
	population := make([]entry, 0, opts.InitialConfigs)
	for i := 0; i < opts.InitialConfigs; i++ {
		population = append(population, entry{cfg: sampler.Sample()})
	}
	res.Best = Observation{Score: math.Inf(1)}

	for rung := 0; rung < opts.Rungs && len(population) > 0; rung++ {
		budget := opts.budgetAt(rung)
		for i := range population {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			score, err := eval(ctx, population[i].cfg, rung, budget)
			if err != nil {
				return res, fmt.Errorf("rung %d: %w", rung, err)
			}
			population[i].score = score
			obs := Observation{Config: population[i].cfg, Score: score, Budget: budget}
			sampler.Observe(obs)
			res.History = append(res.History, obs)
			res.TrialsRun++
			if score < res.Best.Score {
				res.Best = obs
			}
		}
		// Promote the top 1/η.
		sort.Slice(population, func(i, j int) bool { return population[i].score < population[j].score })
		keep := len(population) / opts.Eta
		if keep < 1 {
			keep = 1
		}
		population = population[:keep]
	}
	if math.IsInf(res.Best.Score, 1) {
		return res, fmt.Errorf("search: no successful trials")
	}
	return res, nil
}

// HyperBand runs multiple successive-halving brackets trading off the
// number of configurations against per-configuration budget (Li et al.
// 2017). maxRungs bounds the deepest bracket.
func HyperBand(ctx context.Context, sampler Sampler, eval Evaluator, eta, maxRungs int) (Result, error) {
	var total Result
	total.Best = Observation{Score: math.Inf(1)}
	if eta < 2 {
		return total, fmt.Errorf("search: eta %d must be >= 2", eta)
	}
	if maxRungs < 1 {
		return total, fmt.Errorf("search: maxRungs %d must be >= 1", maxRungs)
	}
	for bracket := maxRungs; bracket >= 1; bracket-- {
		n := int(math.Pow(float64(eta), float64(bracket-1)))
		res, err := SuccessiveHalving(ctx, sampler, eval, HalvingOptions{
			Eta:            eta,
			InitialConfigs: n,
			Rungs:          bracket,
			BudgetAt: func(rung int) float64 {
				return math.Pow(float64(eta), float64(rung-bracket+1))
			},
		})
		if err != nil {
			return total, fmt.Errorf("bracket %d: %w", bracket, err)
		}
		total.History = append(total.History, res.History...)
		total.TrialsRun += res.TrialsRun
		if res.Best.Score < total.Best.Score {
			total.Best = res.Best
		}
	}
	return total, nil
}
