package search

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"edgetune/internal/sim"
)

// Observation records the score a configuration achieved at a budget
// level. Lower scores are better (all EdgeTune objectives are
// minimised).
type Observation struct {
	Config Config
	Score  float64
	Budget float64
}

// Sampler proposes configurations and learns from observations. All
// implementations are safe for concurrent use.
type Sampler interface {
	// Name identifies the strategy ("random", "grid", "bohb").
	Name() string
	// Sample proposes one configuration.
	Sample() Config
	// Observe feeds back a completed trial result.
	Observe(obs Observation)
}

// SamplerState is the serializable position of a sampler's proposal
// stream. Checkpointing it lets a killed-and-restarted search draw the
// same future configurations an uninterrupted run would — observations
// are replayed from the trial log, but the stream position (RNG state
// or sequence cursor) exists nowhere else.
type SamplerState struct {
	RNG    sim.RNGState `json:"rng"`
	Cursor int          `json:"cursor,omitempty"`
}

// Resumable is implemented by samplers whose proposal stream can be
// checkpointed and restored.
type Resumable interface {
	SamplerState() SamplerState
	RestoreSamplerState(SamplerState)
}

// --- Random search -------------------------------------------------------

// RandomSampler draws configurations uniformly (Bergstra & Bengio 2012),
// one of the paper's pluggable strategies.
type RandomSampler struct {
	mu    sync.Mutex
	space *Space
	rng   *sim.RNG
}

// NewRandomSampler creates a uniform sampler over space.
func NewRandomSampler(space *Space, seed uint64) *RandomSampler {
	return &RandomSampler{space: space, rng: sim.NewRNG(seed)}
}

// Name returns "random".
func (r *RandomSampler) Name() string { return "random" }

// Sample draws a uniform configuration.
func (r *RandomSampler) Sample() Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.space.Sample(r.rng)
}

// Observe is a no-op: random search does not learn.
func (r *RandomSampler) Observe(Observation) {}

// SamplerState implements Resumable.
func (r *RandomSampler) SamplerState() SamplerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return SamplerState{RNG: r.rng.State()}
}

// RestoreSamplerState implements Resumable.
func (r *RandomSampler) RestoreSamplerState(s SamplerState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rng.SetState(s.RNG)
}

// --- Grid search ---------------------------------------------------------

// GridSampler exhaustively enumerates a lattice over the space, cycling
// when exhausted. PointsPerDim controls the lattice resolution of
// continuous parameters.
type GridSampler struct {
	mu   sync.Mutex
	grid []Config
	next int
}

// NewGridSampler enumerates the full cartesian grid. It returns an error
// if the grid would exceed maxPoints (guarding against combinatorial
// explosion).
func NewGridSampler(space *Space, pointsPerDim, maxPoints int) (*GridSampler, error) {
	values := make([][]float64, space.Dim())
	total := 1
	for i, p := range space.Params() {
		values[i] = p.GridValues(pointsPerDim)
		total *= len(values[i])
		if total > maxPoints {
			return nil, fmt.Errorf("search: grid of %d+ points exceeds cap %d", total, maxPoints)
		}
	}
	grid := make([]Config, 0, total)
	idx := make([]int, space.Dim())
	for {
		cfg := make(Config, space.Dim())
		for i, p := range space.Params() {
			cfg[p.Name] = values[i][idx[i]]
		}
		grid = append(grid, cfg)
		// Odometer increment.
		d := 0
		for d < len(idx) {
			idx[d]++
			if idx[d] < len(values[d]) {
				break
			}
			idx[d] = 0
			d++
		}
		if d == len(idx) {
			break
		}
	}
	return &GridSampler{grid: grid}, nil
}

// Name returns "grid".
func (g *GridSampler) Name() string { return "grid" }

// Sample returns the next lattice point, cycling at the end.
func (g *GridSampler) Sample() Config {
	g.mu.Lock()
	defer g.mu.Unlock()
	cfg := g.grid[g.next%len(g.grid)]
	g.next++
	return cfg.Clone()
}

// Observe is a no-op: grid search does not learn.
func (g *GridSampler) Observe(Observation) {}

// SamplerState implements Resumable: the state is the lattice cursor.
func (g *GridSampler) SamplerState() SamplerState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return SamplerState{Cursor: g.next}
}

// RestoreSamplerState implements Resumable.
func (g *GridSampler) RestoreSamplerState(s SamplerState) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.next = s.Cursor
}

// Size returns the number of lattice points.
func (g *GridSampler) Size() int { return len(g.grid) }

// --- BOHB / TPE ----------------------------------------------------------

// TPESampler implements the model-based component of BOHB (Falkner et
// al. 2018): observations are split at the γ-quantile into "good" and
// "bad" sets, kernel density estimates l(x) and g(x) are fit to each in
// the unit hypercube, and candidates maximising l(x)/g(x) are proposed.
// Until minObservations results exist it falls back to random sampling,
// exactly as BOHB does.
type TPESampler struct {
	mu    sync.Mutex
	space *Space
	rng   *sim.RNG

	gamma        float64 // quantile separating good from bad
	nCandidates  int     // candidates scored per proposal
	minObs       int     // observations required before modelling
	bandwidth    float64 // KDE kernel bandwidth in unit space
	observations []Observation
}

// TPEOptions tunes the TPE sampler; zero values select defaults.
type TPEOptions struct {
	Gamma           float64
	NumCandidates   int
	MinObservations int
	Bandwidth       float64
}

// NewTPESampler creates a BOHB-style sampler over space.
func NewTPESampler(space *Space, seed uint64, opts TPEOptions) *TPESampler {
	if opts.Gamma <= 0 || opts.Gamma >= 1 {
		opts.Gamma = 0.25
	}
	if opts.NumCandidates <= 0 {
		opts.NumCandidates = 24
	}
	if opts.MinObservations <= 0 {
		opts.MinObservations = 2 * (space.Dim() + 1)
	}
	if opts.Bandwidth <= 0 {
		opts.Bandwidth = 0.12
	}
	return &TPESampler{
		space:       space,
		rng:         sim.NewRNG(seed),
		gamma:       opts.Gamma,
		nCandidates: opts.NumCandidates,
		minObs:      opts.MinObservations,
		bandwidth:   opts.Bandwidth,
	}
}

// Name returns "bohb".
func (t *TPESampler) Name() string { return "bohb" }

// Observe records a completed trial.
func (t *TPESampler) Observe(obs Observation) {
	if math.IsNaN(obs.Score) || math.IsInf(obs.Score, 0) {
		return // discard broken trials rather than poisoning the model
	}
	t.mu.Lock()
	t.observations = append(t.observations, Observation{
		Config: obs.Config.Clone(),
		Score:  obs.Score,
		Budget: obs.Budget,
	})
	t.mu.Unlock()
}

// SamplerState implements Resumable. Observations are not part of the
// state — the caller replays them from its trial log; only the RNG
// position is otherwise unrecoverable.
func (t *TPESampler) SamplerState() SamplerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return SamplerState{RNG: t.rng.State()}
}

// RestoreSamplerState implements Resumable.
func (t *TPESampler) RestoreSamplerState(s SamplerState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rng.SetState(s.RNG)
}

// ObservationCount reports how many results the model has absorbed.
func (t *TPESampler) ObservationCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.observations)
}

// Sample proposes the next configuration: random until warm, then the
// best of nCandidates draws from the good-density l(x) scored by
// l(x)/g(x).
func (t *TPESampler) Sample() Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.observations) < t.minObs {
		return t.space.Sample(t.rng)
	}
	good, bad := t.split()
	if len(good) == 0 || len(bad) == 0 {
		return t.space.Sample(t.rng)
	}
	var (
		bestCfg   Config
		bestRatio = math.Inf(-1)
	)
	for i := 0; i < t.nCandidates; i++ {
		u := t.sampleFromKDE(good)
		lg := t.kdeLogDensity(good, u)
		gd := t.kdeLogDensity(bad, u)
		if ratio := lg - gd; ratio > bestRatio {
			cfg, err := t.space.FromUnit(u)
			if err != nil {
				continue
			}
			bestRatio, bestCfg = ratio, cfg
		}
	}
	if bestCfg == nil {
		return t.space.Sample(t.rng)
	}
	return bestCfg
}

// split partitions observations (at the highest budget tier with enough
// data, per BOHB) into good/bad unit points at the γ quantile of score.
func (t *TPESampler) split() (good, bad [][]float64) {
	// Prefer the largest budget with >= minObs observations so the model
	// learns from the most faithful evaluations available.
	byBudget := make(map[float64][]Observation)
	for _, o := range t.observations {
		byBudget[o.Budget] = append(byBudget[o.Budget], o)
	}
	budgets := make([]float64, 0, len(byBudget))
	for b := range byBudget {
		budgets = append(budgets, b)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(budgets)))
	pool := t.observations
	for _, b := range budgets {
		if len(byBudget[b]) >= t.minObs {
			pool = byBudget[b]
			break
		}
	}

	sorted := make([]Observation, len(pool))
	copy(sorted, pool)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score < sorted[j].Score })
	nGood := int(t.gamma * float64(len(sorted)))
	if nGood < 1 {
		nGood = 1
	}
	if nGood >= len(sorted) {
		nGood = len(sorted) - 1
	}
	for i, o := range sorted {
		u := t.space.ToUnit(o.Config)
		if i < nGood {
			good = append(good, u)
		} else {
			bad = append(bad, u)
		}
	}
	return good, bad
}

// sampleFromKDE draws a point from the mixture of Gaussians centred on
// points, truncated to the unit cube.
func (t *TPESampler) sampleFromKDE(points [][]float64) []float64 {
	center := points[t.rng.Intn(len(points))]
	u := make([]float64, len(center))
	for i, c := range center {
		v := c + t.rng.NormFloat64()*t.bandwidth
		u[i] = clamp(v, 0, 1)
	}
	return u
}

// kdeLogDensity evaluates the log of the Gaussian KDE at u.
func (t *TPESampler) kdeLogDensity(points [][]float64, u []float64) float64 {
	if len(points) == 0 {
		return math.Inf(-1)
	}
	inv2h2 := 1 / (2 * t.bandwidth * t.bandwidth)
	var sum float64
	for _, p := range points {
		var d2 float64
		for i := range u {
			diff := u[i] - p[i]
			d2 += diff * diff
		}
		sum += math.Exp(-d2 * inv2h2)
	}
	return math.Log(sum / float64(len(points)))
}

// --- Registry ------------------------------------------------------------

// Algorithm names accepted by NewSampler.
const (
	AlgoRandom = "random"
	AlgoGrid   = "grid"
	AlgoBOHB   = "bohb"
)

// NewSampler constructs a sampler by algorithm name. BOHB is the paper's
// default strategy.
func NewSampler(algo string, space *Space, seed uint64) (Sampler, error) {
	switch algo {
	case AlgoRandom:
		return NewRandomSampler(space, seed), nil
	case AlgoGrid:
		return NewGridSampler(space, 4, 100000)
	case AlgoHalton:
		return NewHaltonSampler(space, seed), nil
	case AlgoBOHB, "":
		return NewTPESampler(space, seed, TPEOptions{}), nil
	default:
		return nil, fmt.Errorf("search: unknown algorithm %q", algo)
	}
}
