package search

import (
	"math"
	"testing"
	"testing/quick"

	"edgetune/internal/sim"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(
		Param{Name: "layers", Kind: Choice, Choices: []float64{18, 34, 50}},
		Param{Name: "batch", Kind: Int, Min: 32, Max: 512, Log: true},
		Param{Name: "dropout", Kind: Float, Min: 0.1, Max: 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Param
		wantErr bool
	}{
		{name: "valid choice", p: Param{Name: "a", Kind: Choice, Choices: []float64{1, 2}}},
		{name: "empty name", p: Param{Kind: Choice, Choices: []float64{1}}, wantErr: true},
		{name: "empty choices", p: Param{Name: "a", Kind: Choice}, wantErr: true},
		{name: "unsorted choices", p: Param{Name: "a", Kind: Choice, Choices: []float64{2, 1}}, wantErr: true},
		{name: "valid int", p: Param{Name: "a", Kind: Int, Min: 1, Max: 8}},
		{name: "min>=max", p: Param{Name: "a", Kind: Int, Min: 8, Max: 8}, wantErr: true},
		{name: "log with zero min", p: Param{Name: "a", Kind: Float, Min: 0, Max: 1, Log: true}, wantErr: true},
		{name: "unknown kind", p: Param{Name: "a"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewSpaceRejectsDuplicates(t *testing.T) {
	_, err := NewSpace(
		Param{Name: "a", Kind: Float, Min: 0, Max: 1},
		Param{Name: "a", Kind: Float, Min: 0, Max: 1},
	)
	if err == nil {
		t.Error("duplicate names did not error")
	}
	if _, err := NewSpace(); err == nil {
		t.Error("empty space did not error")
	}
}

func TestSampleInDomain(t *testing.T) {
	s := testSpace(t)
	rng := sim.NewRNG(1)
	for i := 0; i < 500; i++ {
		cfg := s.Sample(rng)
		if !s.Contains(cfg) {
			t.Fatalf("sampled config %v not in space", cfg)
		}
	}
}

func TestUnitRoundTrip(t *testing.T) {
	s := testSpace(t)
	rng := sim.NewRNG(2)
	f := func(uint8) bool {
		cfg := s.Sample(rng)
		u := s.ToUnit(cfg)
		back, err := s.FromUnit(u)
		if err != nil {
			return false
		}
		// Choice and Int round-trip exactly; floats within tolerance.
		if back["layers"] != cfg["layers"] {
			return false
		}
		if math.Abs(back["batch"]-cfg["batch"]) > 1.5 {
			return false
		}
		return math.Abs(back["dropout"]-cfg["dropout"]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromUnitClamps(t *testing.T) {
	p := Param{Name: "x", Kind: Float, Min: 0.1, Max: 0.5}
	if got := p.FromUnit(-3); got != 0.1 {
		t.Errorf("FromUnit(-3) = %v, want 0.1", got)
	}
	if got := p.FromUnit(7); got != 0.5 {
		t.Errorf("FromUnit(7) = %v, want 0.5", got)
	}
}

func TestIntRounding(t *testing.T) {
	p := Param{Name: "cores", Kind: Int, Min: 1, Max: 4}
	for u := 0.0; u <= 1.0; u += 0.01 {
		v := p.FromUnit(u)
		if v != math.Round(v) {
			t.Fatalf("FromUnit(%v) = %v is not integral", u, v)
		}
	}
}

func TestLogScaleSampling(t *testing.T) {
	p := Param{Name: "batch", Kind: Int, Min: 32, Max: 512, Log: true}
	// Midpoint of the log range must be the geometric mean, ~128.
	mid := p.FromUnit(0.5)
	if mid < 120 || mid > 136 {
		t.Errorf("log midpoint = %v, want ~128", mid)
	}
}

func TestGridValues(t *testing.T) {
	choice := Param{Name: "layers", Kind: Choice, Choices: []float64{18, 34, 50}}
	if got := choice.GridValues(10); len(got) != 3 {
		t.Errorf("choice grid = %v, want the 3 choices", got)
	}
	intp := Param{Name: "gpus", Kind: Int, Min: 1, Max: 8}
	vals := intp.GridValues(8)
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("grid values not strictly ascending: %v", vals)
		}
	}
	if vals[0] != 1 || vals[len(vals)-1] != 8 {
		t.Errorf("grid endpoints = %v, want 1..8", vals)
	}
}

func TestContains(t *testing.T) {
	s := testSpace(t)
	ok := Config{"layers": 34, "batch": 64, "dropout": 0.3}
	if !s.Contains(ok) {
		t.Error("valid config rejected")
	}
	tests := []Config{
		{"layers": 33, "batch": 64, "dropout": 0.3},             // not a choice
		{"layers": 34, "batch": 64.5, "dropout": 0.3},           // non-integer
		{"layers": 34, "batch": 64, "dropout": 0.9},             // out of range
		{"layers": 34, "batch": 64},                             // missing key
		{"layers": 34, "batch": 64, "dropout": 0.3, "extra": 1}, // extra key
	}
	for i, cfg := range tests {
		if s.Contains(cfg) {
			t.Errorf("case %d: invalid config %v accepted", i, cfg)
		}
	}
}

func TestConfigKeyCanonical(t *testing.T) {
	a := Config{"x": 1, "y": 2}
	b := Config{"y": 2, "x": 1}
	if a.Key() != b.Key() {
		t.Errorf("keys differ for equal configs: %q vs %q", a.Key(), b.Key())
	}
	c := Config{"x": 1, "y": 3}
	if a.Key() == c.Key() {
		t.Error("different configs share a key")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	a := Config{"x": 1}
	b := a.Clone()
	b["x"] = 2
	if a["x"] != 1 {
		t.Error("Clone shares storage")
	}
}
