package search

import (
	"math"
	"testing"
)

func TestRadicalInverse(t *testing.T) {
	tests := []struct {
		n, base int
		want    float64
	}{
		{n: 1, base: 2, want: 0.5},
		{n: 2, base: 2, want: 0.25},
		{n: 3, base: 2, want: 0.75},
		{n: 1, base: 3, want: 1.0 / 3},
		{n: 4, base: 3, want: 4.0 / 9},
	}
	for _, tt := range tests {
		if got := radicalInverse(tt.n, tt.base); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("radicalInverse(%d, %d) = %v, want %v", tt.n, tt.base, got, tt.want)
		}
	}
}

func TestHaltonStaysInSpace(t *testing.T) {
	s := twoDSpace(t)
	h := NewHaltonSampler(s, 7)
	for i := 0; i < 500; i++ {
		if cfg := h.Sample(); !s.Contains(cfg) {
			t.Fatalf("halton sample %d outside space: %v", i, cfg)
		}
	}
}

// TestHaltonLowerDiscrepancyThanRandom: over a modest budget, the worst
// empty gap of the Halton stream (measured by 1-D stratification) must
// beat pseudo-random sampling.
func TestHaltonLowerDiscrepancyThanRandom(t *testing.T) {
	s := twoDSpace(t)
	const (
		n       = 64
		buckets = 16
	)
	maxGap := func(sampler Sampler) int {
		var counts [buckets]int
		for i := 0; i < n; i++ {
			cfg := sampler.Sample()
			idx := int(cfg["x"] * buckets)
			if idx >= buckets {
				idx = buckets - 1
			}
			counts[idx]++
		}
		empty := 0
		for _, c := range counts {
			if c == 0 {
				empty++
			}
		}
		return empty
	}
	haltonEmpty := maxGap(NewHaltonSampler(s, 1))
	randomEmpty := maxGap(NewRandomSampler(s, 1))
	if haltonEmpty > 0 {
		t.Errorf("halton left %d/16 strata empty after 64 samples", haltonEmpty)
	}
	if haltonEmpty > randomEmpty {
		t.Errorf("halton (%d empty) worse than random (%d empty)", haltonEmpty, randomEmpty)
	}
}

func TestHaltonSeedsDiffer(t *testing.T) {
	s := twoDSpace(t)
	a := NewHaltonSampler(s, 1)
	b := NewHaltonSampler(s, 2)
	if a.Sample().Key() == b.Sample().Key() {
		t.Error("different seeds start at the same point")
	}
}

func TestHaltonInRegistry(t *testing.T) {
	s := twoDSpace(t)
	smp, err := NewSampler(AlgoHalton, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if smp.Name() != "halton" {
		t.Errorf("Name = %q", smp.Name())
	}
	if !s.Contains(smp.Sample()) {
		t.Error("registry halton sample invalid")
	}
}

func TestHaltonWideSpaces(t *testing.T) {
	// More dimensions than prime bases must still work.
	params := make([]Param, 20)
	for i := range params {
		params[i] = Param{Name: string(rune('a' + i)), Kind: Float, Min: 0, Max: 1}
	}
	s, err := NewSpace(params...)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHaltonSampler(s, 3)
	for i := 0; i < 50; i++ {
		if cfg := h.Sample(); !s.Contains(cfg) {
			t.Fatal("wide-space sample invalid")
		}
	}
}
