package search

import (
	"context"
	"math"
	"sync"
	"testing"
)

// quadratic is a smooth test objective with its minimum at the given
// point in unit space.
func quadratic(s *Space, minimum []float64) func(cfg Config) float64 {
	return func(cfg Config) float64 {
		u := s.ToUnit(cfg)
		var d float64
		for i := range u {
			diff := u[i] - minimum[i]
			d += diff * diff
		}
		return d
	}
}

func twoDSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(
		Param{Name: "x", Kind: Float, Min: 0, Max: 1},
		Param{Name: "y", Kind: Float, Min: 0, Max: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRandomSamplerCoversSpace(t *testing.T) {
	s := twoDSpace(t)
	r := NewRandomSampler(s, 1)
	var minX, maxX = 1.0, 0.0
	for i := 0; i < 200; i++ {
		cfg := r.Sample()
		if !s.Contains(cfg) {
			t.Fatal("random sample outside space")
		}
		minX = math.Min(minX, cfg["x"])
		maxX = math.Max(maxX, cfg["x"])
	}
	if minX > 0.1 || maxX < 0.9 {
		t.Errorf("random sampling poorly spread: [%v, %v]", minX, maxX)
	}
}

func TestGridSamplerEnumerates(t *testing.T) {
	s, err := NewSpace(
		Param{Name: "a", Kind: Choice, Choices: []float64{1, 2, 3}},
		Param{Name: "b", Kind: Choice, Choices: []float64{10, 20}},
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGridSampler(s, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 6 {
		t.Fatalf("grid size = %d, want 6", g.Size())
	}
	seen := make(map[string]bool)
	for i := 0; i < 6; i++ {
		seen[g.Sample().Key()] = true
	}
	if len(seen) != 6 {
		t.Errorf("grid enumerated %d unique points, want 6", len(seen))
	}
	// Cycles after exhaustion.
	first := g.Sample().Key()
	if !seen[first] {
		t.Error("cycled sample was not part of the grid")
	}
}

func TestGridSamplerCap(t *testing.T) {
	s, err := NewSpace(
		Param{Name: "a", Kind: Float, Min: 0, Max: 1},
		Param{Name: "b", Kind: Float, Min: 0, Max: 1},
		Param{Name: "c", Kind: Float, Min: 0, Max: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGridSampler(s, 100, 1000); err == nil {
		t.Error("oversized grid did not error")
	}
}

func TestTPEWarmupIsRandom(t *testing.T) {
	s := twoDSpace(t)
	tpe := NewTPESampler(s, 1, TPEOptions{MinObservations: 10})
	for i := 0; i < 5; i++ {
		if !s.Contains(tpe.Sample()) {
			t.Fatal("warmup sample outside space")
		}
	}
	if tpe.ObservationCount() != 0 {
		t.Error("sampling should not create observations")
	}
}

func TestTPEConcentratesNearOptimum(t *testing.T) {
	s := twoDSpace(t)
	obj := quadratic(s, []float64{0.8, 0.2})
	tpe := NewTPESampler(s, 7, TPEOptions{MinObservations: 10})
	rand := NewRandomSampler(s, 7)

	// Warm the model with random observations.
	for i := 0; i < 60; i++ {
		cfg := rand.Sample()
		tpe.Observe(Observation{Config: cfg, Score: obj(cfg), Budget: 1})
	}
	// TPE proposals should now average a lower objective than fresh
	// random samples.
	var tpeSum, randSum float64
	const n = 40
	for i := 0; i < n; i++ {
		tpeSum += obj(tpe.Sample())
		randSum += obj(rand.Sample())
	}
	if tpeSum >= randSum {
		t.Errorf("TPE mean objective %v not better than random %v", tpeSum/n, randSum/n)
	}
}

func TestTPERejectsBrokenScores(t *testing.T) {
	s := twoDSpace(t)
	tpe := NewTPESampler(s, 1, TPEOptions{})
	tpe.Observe(Observation{Config: s.Sample(NewRandomSampler(s, 1).rng), Score: math.NaN()})
	tpe.Observe(Observation{Config: Config{"x": 0.5, "y": 0.5}, Score: math.Inf(1)})
	if got := tpe.ObservationCount(); got != 0 {
		t.Errorf("NaN/Inf observations absorbed: %d", got)
	}
}

func TestTPEConcurrentSafety(t *testing.T) {
	s := twoDSpace(t)
	tpe := NewTPESampler(s, 1, TPEOptions{MinObservations: 4})
	obj := quadratic(s, []float64{0.5, 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := NewRandomSampler(s, seed)
			for i := 0; i < 50; i++ {
				cfg := r.Sample()
				tpe.Observe(Observation{Config: cfg, Score: obj(cfg), Budget: 1})
				_ = tpe.Sample()
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := tpe.ObservationCount(); got != 400 {
		t.Errorf("observations = %d, want 400", got)
	}
}

func TestNewSamplerRegistry(t *testing.T) {
	s := twoDSpace(t)
	for _, algo := range []string{AlgoRandom, AlgoGrid, AlgoBOHB, ""} {
		smp, err := NewSampler(algo, s, 1)
		if err != nil {
			t.Fatalf("NewSampler(%q): %v", algo, err)
		}
		if !s.Contains(smp.Sample()) {
			t.Errorf("%q sampler produced invalid config", algo)
		}
	}
	if _, err := NewSampler("annealing", s, 1); err == nil {
		t.Error("unknown algorithm did not error")
	}
}

func TestSuccessiveHalvingFindsOptimum(t *testing.T) {
	s := twoDSpace(t)
	obj := quadratic(s, []float64{0.3, 0.7})
	eval := func(_ context.Context, cfg Config, _ int, budget float64) (float64, error) {
		// Higher budget = less noise, mimicking fidelity.
		return obj(cfg) * (1 + 0.1/budget), nil
	}
	res, err := SuccessiveHalving(context.Background(), NewTPESampler(s, 3, TPEOptions{}), eval, HalvingOptions{
		Eta: 2, InitialConfigs: 16, Rungs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score > 0.2 {
		t.Errorf("best score %v too far from optimum", res.Best.Score)
	}
	// 16 + 8 + 4 + 2 evaluations.
	if res.TrialsRun != 30 {
		t.Errorf("TrialsRun = %d, want 30", res.TrialsRun)
	}
}

func TestSuccessiveHalvingBudgetsIncrease(t *testing.T) {
	s := twoDSpace(t)
	var budgets []float64
	eval := func(_ context.Context, _ Config, _ int, budget float64) (float64, error) {
		budgets = append(budgets, budget)
		return 1, nil
	}
	if _, err := SuccessiveHalving(context.Background(), NewRandomSampler(s, 1), eval, HalvingOptions{
		Eta: 2, InitialConfigs: 4, Rungs: 3,
	}); err != nil {
		t.Fatal(err)
	}
	// Rungs: 4 at b0, 2 at b1, 1 at b2 with b0 < b1 < b2 = 1.
	if len(budgets) != 7 {
		t.Fatalf("ran %d evals, want 7", len(budgets))
	}
	if budgets[0] >= budgets[4] || budgets[4] >= budgets[6] {
		t.Errorf("budgets not increasing across rungs: %v", budgets)
	}
	if budgets[6] != 1 {
		t.Errorf("final rung budget = %v, want 1", budgets[6])
	}
}

func TestSuccessiveHalvingValidation(t *testing.T) {
	s := twoDSpace(t)
	eval := func(context.Context, Config, int, float64) (float64, error) { return 0, nil }
	bad := []HalvingOptions{
		{Eta: 1, InitialConfigs: 4, Rungs: 2},
		{Eta: 2, InitialConfigs: 0, Rungs: 2},
		{Eta: 2, InitialConfigs: 4, Rungs: 0},
	}
	for i, opts := range bad {
		if _, err := SuccessiveHalving(context.Background(), NewRandomSampler(s, 1), eval, opts); err == nil {
			t.Errorf("case %d: invalid options did not error", i)
		}
	}
}

func TestSuccessiveHalvingContextCancel(t *testing.T) {
	s := twoDSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	eval := func(context.Context, Config, int, float64) (float64, error) {
		calls++
		if calls == 3 {
			cancel()
		}
		return 1, nil
	}
	_, err := SuccessiveHalving(ctx, NewRandomSampler(s, 1), eval, HalvingOptions{
		Eta: 2, InitialConfigs: 8, Rungs: 3,
	})
	if err == nil {
		t.Error("cancelled context did not error")
	}
	if calls > 4 {
		t.Errorf("ran %d evals after cancellation", calls)
	}
}

func TestHyperBandRunsBrackets(t *testing.T) {
	s := twoDSpace(t)
	obj := quadratic(s, []float64{0.5, 0.5})
	eval := func(_ context.Context, cfg Config, _ int, _ float64) (float64, error) {
		return obj(cfg), nil
	}
	res, err := HyperBand(context.Background(), NewRandomSampler(s, 5), eval, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Brackets: 9 cfg x 3 rungs (9+3+1), 3 cfg x 2 rungs (3+1), 1 cfg x 1.
	if res.TrialsRun != 13+4+1 {
		t.Errorf("TrialsRun = %d, want 18", res.TrialsRun)
	}
	if res.Best.Score > 0.5 {
		t.Errorf("best %v unexpectedly poor", res.Best.Score)
	}
}

func TestHyperBandValidation(t *testing.T) {
	s := twoDSpace(t)
	eval := func(context.Context, Config, int, float64) (float64, error) { return 0, nil }
	if _, err := HyperBand(context.Background(), NewRandomSampler(s, 1), eval, 1, 2); err == nil {
		t.Error("eta=1 did not error")
	}
	if _, err := HyperBand(context.Background(), NewRandomSampler(s, 1), eval, 2, 0); err == nil {
		t.Error("maxRungs=0 did not error")
	}
}

// TestSamplerStateResumes checks the crash/restart contract for every
// Resumable sampler: a fresh sampler restored to a mid-stream snapshot
// must propose exactly the configurations the original would have
// proposed next.
func TestSamplerStateResumes(t *testing.T) {
	s := twoDSpace(t)
	fresh := map[string]func() Sampler{
		"random": func() Sampler { return NewRandomSampler(s, 7) },
		"halton": func() Sampler { return NewHaltonSampler(s, 7) },
		"bohb":   func() Sampler { return NewTPESampler(s, 7, TPEOptions{}) },
	}
	for name, mk := range fresh {
		t.Run(name, func(t *testing.T) {
			orig := mk()
			// Warm the TPE model past minObs so Sample consumes RNG in
			// the modelled path, not just the random fallback.
			for i := 0; i < 20; i++ {
				cfg := orig.Sample()
				orig.Observe(Observation{Config: cfg, Score: float64(i), Budget: 1})
			}
			snap := orig.(Resumable).SamplerState()

			resumed := mk()
			// Replay the observations (as checkpoint resume does), then
			// restore the stream position.
			for _, o := range observationsOf(orig) {
				resumed.Observe(o)
			}
			resumed.(Resumable).RestoreSamplerState(snap)

			for i := 0; i < 5; i++ {
				a, b := orig.Sample(), resumed.Sample()
				if !sameConfig(a, b) {
					t.Fatalf("draw %d diverged after restore: %v vs %v", i, a, b)
				}
			}
		})
	}

	g, err := NewGridSampler(s, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		g.Sample()
	}
	snap := g.SamplerState()
	g2, err := NewGridSampler(s, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	g2.RestoreSamplerState(snap)
	if !sameConfig(g.Sample(), g2.Sample()) {
		t.Error("grid cursor not restored")
	}
}

// observationsOf extracts the TPE model's replay log; stateless
// samplers have nothing to replay.
func observationsOf(s Sampler) []Observation {
	if tpe, ok := s.(*TPESampler); ok {
		tpe.mu.Lock()
		defer tpe.mu.Unlock()
		return append([]Observation(nil), tpe.observations...)
	}
	return nil
}

func sameConfig(a, b Config) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
