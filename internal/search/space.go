// Package search implements the hyperparameter search substrate:
// parameter spaces, the sampling strategies the paper discusses (grid
// search, random search, and BOHB's TPE density model), and the
// successive-halving schedule they plug into. It replaces the role Ray
// Tune's scheduler/search-algorithm stack plays in the original EdgeTune
// prototype.
package search

import (
	"fmt"
	"math"
	"sort"

	"edgetune/internal/sim"
)

// Kind distinguishes parameter domains.
type Kind int

// Parameter domain kinds.
const (
	Choice Kind = iota + 1 // finite set of numeric values
	Int                    // integer range [Min, Max]
	Float                  // continuous range [Min, Max]
)

// Param describes one tunable parameter.
type Param struct {
	Name    string
	Kind    Kind
	Choices []float64 // Choice only; must be sorted ascending
	Min     float64   // Int/Float only
	Max     float64   // Int/Float only
	Log     bool      // Int/Float: sample on a log scale
}

// Validate reports whether the parameter definition is well-formed.
func (p Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("search: parameter with empty name")
	}
	switch p.Kind {
	case Choice:
		if len(p.Choices) == 0 {
			return fmt.Errorf("search: %s: choice parameter needs values", p.Name)
		}
		for i := 1; i < len(p.Choices); i++ {
			if p.Choices[i] <= p.Choices[i-1] {
				return fmt.Errorf("search: %s: choices must be strictly ascending", p.Name)
			}
		}
	case Int, Float:
		if p.Min >= p.Max {
			return fmt.Errorf("search: %s: min %v >= max %v", p.Name, p.Min, p.Max)
		}
		if p.Log && p.Min <= 0 {
			return fmt.Errorf("search: %s: log scale requires positive min", p.Name)
		}
	default:
		return fmt.Errorf("search: %s: unknown kind %d", p.Name, p.Kind)
	}
	return nil
}

// Sample draws a uniform value from the parameter's domain.
func (p Param) Sample(rng *sim.RNG) float64 {
	return p.FromUnit(rng.Float64())
}

// Unit maps a domain value to [0, 1] for density modelling.
func (p Param) Unit(v float64) float64 {
	switch p.Kind {
	case Choice:
		idx := p.nearestChoice(v)
		if len(p.Choices) == 1 {
			return 0.5
		}
		return float64(idx) / float64(len(p.Choices)-1)
	default:
		lo, hi, x := p.Min, p.Max, v
		if p.Log {
			lo, hi, x = math.Log(lo), math.Log(hi), math.Log(clamp(v, p.Min, p.Max))
		}
		return clamp((x-lo)/(hi-lo), 0, 1)
	}
}

// FromUnit maps u ∈ [0, 1] back to a valid domain value (rounding
// integers and snapping choices).
func (p Param) FromUnit(u float64) float64 {
	u = clamp(u, 0, 1)
	switch p.Kind {
	case Choice:
		idx := int(u * float64(len(p.Choices)))
		if idx >= len(p.Choices) {
			idx = len(p.Choices) - 1
		}
		return p.Choices[idx]
	default:
		lo, hi := p.Min, p.Max
		if p.Log {
			lo, hi = math.Log(lo), math.Log(hi)
		}
		v := lo + u*(hi-lo)
		if p.Log {
			v = math.Exp(v)
		}
		if p.Kind == Int {
			v = math.Round(v)
		}
		return clamp(v, p.Min, p.Max)
	}
}

// GridValues returns up to n evenly spaced domain values for grid search.
// Choice parameters return all choices regardless of n.
func (p Param) GridValues(n int) []float64 {
	if p.Kind == Choice {
		out := make([]float64, len(p.Choices))
		copy(out, p.Choices)
		return out
	}
	if n < 2 {
		n = 2
	}
	out := make([]float64, 0, n)
	seen := make(map[float64]bool, n)
	for i := 0; i < n; i++ {
		v := p.FromUnit(float64(i) / float64(n-1))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether v is a valid value of the domain.
func (p Param) Contains(v float64) bool {
	switch p.Kind {
	case Choice:
		for _, c := range p.Choices {
			if c == v {
				return true
			}
		}
		return false
	case Int:
		return v >= p.Min && v <= p.Max && v == math.Round(v)
	default:
		return v >= p.Min && v <= p.Max
	}
}

func (p Param) nearestChoice(v float64) int {
	best, bestIdx := math.Inf(1), 0
	for i, c := range p.Choices {
		if d := math.Abs(c - v); d < best {
			best, bestIdx = d, i
		}
	}
	return bestIdx
}

// Config is a concrete assignment of parameter values by name.
type Config map[string]float64

// Clone returns a deep copy of the config.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Key returns a canonical string identity for deduplication and caching.
func (c Config) Key() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%g;", k, c[k])
	}
	return s
}

// Space is an ordered set of parameters.
type Space struct {
	params []Param
	index  map[string]int
}

// NewSpace builds a space, validating every parameter and rejecting
// duplicates.
func NewSpace(params ...Param) (*Space, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("search: space needs at least one parameter")
	}
	s := &Space{params: params, index: make(map[string]int, len(params))}
	for i, p := range params {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("search: duplicate parameter %q", p.Name)
		}
		s.index[p.Name] = i
	}
	return s, nil
}

// Params returns the parameter definitions in declaration order.
func (s *Space) Params() []Param { return s.params }

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.params) }

// Sample draws a uniform configuration.
func (s *Space) Sample(rng *sim.RNG) Config {
	cfg := make(Config, len(s.params))
	for _, p := range s.params {
		cfg[p.Name] = p.Sample(rng)
	}
	return cfg
}

// ToUnit encodes a configuration as a point in the unit hypercube,
// following declaration order.
func (s *Space) ToUnit(cfg Config) []float64 {
	u := make([]float64, len(s.params))
	for i, p := range s.params {
		u[i] = p.Unit(cfg[p.Name])
	}
	return u
}

// FromUnit decodes a unit-hypercube point into a configuration.
func (s *Space) FromUnit(u []float64) (Config, error) {
	if len(u) != len(s.params) {
		return nil, fmt.Errorf("search: unit point dim %d != space dim %d", len(u), len(s.params))
	}
	cfg := make(Config, len(s.params))
	for i, p := range s.params {
		cfg[p.Name] = p.FromUnit(u[i])
	}
	return cfg, nil
}

// Contains reports whether cfg assigns a valid value to every parameter
// (extra keys are rejected).
func (s *Space) Contains(cfg Config) bool {
	if len(cfg) != len(s.params) {
		return false
	}
	for _, p := range s.params {
		v, ok := cfg[p.Name]
		if !ok || !p.Contains(v) {
			return false
		}
	}
	return true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
