// Package perfmodel is the analytic hardware performance model standing
// in for the paper's physical testbed (Titan RTX training server and CPU
// edge devices). It charges simulated runtime and energy for training
// and inference runs, calibrated so that the qualitative shapes the
// paper's motivation figures document hold:
//
//   - Figure 2: deeper models train slower and cost more energy; their
//     inference throughput drops while per-image energy rises.
//   - Figure 3a: very large training batches (1024) hit GPU memory
//     pressure and get slower AND more energy-hungry, while 256 and 512
//     have similar runtime but different energy.
//   - Figure 3b: inference throughput rises with batch size, saturates,
//     and decays past the device's sweet spot.
//   - Figure 4: with small batches, adding GPUs *increases* runtime
//     (communication-bound) and energy; with large batches runtime
//     improves sublinearly while energy still grows.
//   - Figure 5: single-sample inference does not speed up with cores but
//     burns more power; multi-sample inference scales with cores into a
//     memory-bandwidth knee (4 cores barely beat 2).
//
// All model constants are exported profile fields so tests and ablation
// benchmarks can perturb them.
package perfmodel

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Cost is a simulated (duration, energy) charge.
type Cost struct {
	Duration time.Duration
	// EnergyJ is the energy in joules.
	EnergyJ float64
}

// KJ reports the energy in kilojoules, the unit of the paper's tuning
// figures.
func (c Cost) KJ() float64 { return c.EnergyJ / 1000 }

// Add accumulates another cost.
func (c Cost) Add(other Cost) Cost {
	return Cost{Duration: c.Duration + other.Duration, EnergyJ: c.EnergyJ + other.EnergyJ}
}

// --- Training (GPU server) -------------------------------------------------

// GPUProfile models the tuning server's accelerator node.
type GPUProfile struct {
	Name string
	// FlopsPerSec is the effective sustained throughput of one GPU.
	FlopsPerSec float64
	// MaxGPUs bounds the system-parameter search.
	MaxGPUs int
	// CommSecPerStepPerGPU is the gradient-synchronisation cost added
	// per optimiser step per additional GPU (all-reduce latency).
	CommSecPerStepPerGPU float64
	// StepOverheadSec is the fixed kernel-launch/host overhead per step.
	StepOverheadSec float64
	// ParallelEffExp is the exponent loss of multi-GPU scaling: g GPUs
	// deliver g^(1-ParallelEffExp) of one GPU's compute rate, modelling
	// stragglers and kernel-splitting inefficiency.
	ParallelEffExp float64
	// MemBatchKnee is the global batch size beyond which memory
	// pressure degrades throughput.
	MemBatchKnee float64
	// MemPressureFactor scales the quadratic slowdown past the knee.
	MemPressureFactor float64
	// UtilBatchRef is the batch size at which the GPUs reach full
	// dynamic-power utilisation; smaller batches under-fill the device.
	UtilBatchRef float64
	// IdlePowerW is the host's baseline power draw.
	IdlePowerW float64
	// GPUIdlePowerW is each installed GPU's baseline draw.
	GPUIdlePowerW float64
	// GPUDynamicPowerW is each GPU's additional draw at full utilisation.
	GPUDynamicPowerW float64
}

// TitanRTX returns the profile of the paper's training testbed,
// calibrated so a ResNet18-class CIFAR10 training run lands in the
// paper's tens-of-minutes range.
func TitanRTX() GPUProfile {
	return GPUProfile{
		Name:                 "titan-rtx",
		FlopsPerSec:          6e11,
		MaxGPUs:              8,
		CommSecPerStepPerGPU: 0.025,
		StepOverheadSec:      0.002,
		ParallelEffExp:       0.35,
		MemBatchKnee:         600,
		MemPressureFactor:    2.2,
		UtilBatchRef:         512,
		IdlePowerW:           60,
		GPUIdlePowerW:        15,
		GPUDynamicPowerW:     105,
	}
}

// TrainSpec describes one training run at paper scale.
type TrainSpec struct {
	// FLOPsPerSample is the forward-pass cost of the paper-scale model
	// this trial emulates (the backward pass is charged at 2x).
	FLOPsPerSample float64
	// Params is the paper-scale parameter count (drives communication).
	Params float64
	// Samples is the number of paper-scale samples per epoch after the
	// dataset-fraction budget is applied.
	Samples float64
	// Epochs is the number of passes.
	Epochs int
	// BatchSize is the training mini-batch size.
	BatchSize int
	// GPUs is the number of accelerators used.
	GPUs int
}

func (s TrainSpec) validate(p GPUProfile) error {
	switch {
	case s.FLOPsPerSample <= 0:
		return fmt.Errorf("perfmodel: FLOPsPerSample %v must be positive", s.FLOPsPerSample)
	case s.Samples <= 0:
		return fmt.Errorf("perfmodel: Samples %v must be positive", s.Samples)
	case s.Epochs < 1:
		return fmt.Errorf("perfmodel: Epochs %d must be >= 1", s.Epochs)
	case s.BatchSize < 1:
		return fmt.Errorf("perfmodel: BatchSize %d must be >= 1", s.BatchSize)
	case s.GPUs < 1:
		return fmt.Errorf("perfmodel: GPUs %d must be >= 1", s.GPUs)
	case p.MaxGPUs > 0 && s.GPUs > p.MaxGPUs:
		return fmt.Errorf("perfmodel: GPUs %d exceeds profile max %d", s.GPUs, p.MaxGPUs)
	}
	return nil
}

// TrainingCost returns the simulated duration and energy of a training
// run on the profile.
//
// The compute term is roofline-style: 3x forward FLOPs (fw + bw) divided
// across GPUs, inflated quadratically once the per-GPU batch exceeds the
// memory knee. The communication term charges one all-reduce per step
// per extra GPU, which makes small-batch multi-GPU training
// communication-bound — the Figure 4a effect.
func TrainingCost(spec TrainSpec, prof GPUProfile) (Cost, error) {
	if err := spec.validate(prof); err != nil {
		return Cost{}, err
	}
	totalSamples := spec.Samples * float64(spec.Epochs)
	steps := totalSamples / float64(spec.BatchSize)
	if steps < 1 {
		steps = 1
	}
	flops := 3 * spec.FLOPsPerSample * totalSamples

	// Memory pressure: a global batch past the knee slows compute
	// (activation working set exceeds device memory headroom).
	slowdown := 1.0
	if b := float64(spec.BatchSize); b > prof.MemBatchKnee {
		over := b/prof.MemBatchKnee - 1
		slowdown += prof.MemPressureFactor * over * over
	}

	// Multi-GPU compute scales as g^(1-δ), not g.
	effGPUs := math.Pow(float64(spec.GPUs), 1-prof.ParallelEffExp)
	computeSec := flops * slowdown / (prof.FlopsPerSec * effGPUs)
	commSec := steps * prof.CommSecPerStepPerGPU * float64(spec.GPUs-1) * commScale(spec.Params)
	overheadSec := steps * prof.StepOverheadSec
	totalSec := computeSec + commSec + overheadSec

	// Utilisation: fraction of wall time the GPUs spend computing,
	// further reduced when small batches under-fill the device.
	util := computeSec / totalSec
	if prof.UtilBatchRef > 0 {
		fill := float64(spec.BatchSize) / prof.UtilBatchRef
		if fill > 1 {
			fill = 1
		}
		util *= 0.6 + 0.4*fill
	}
	power := prof.IdlePowerW + float64(spec.GPUs)*(prof.GPUIdlePowerW+prof.GPUDynamicPowerW*util)
	return Cost{
		Duration: secondsToDuration(totalSec),
		EnergyJ:  power * totalSec,
	}, nil
}

// commScale grows the all-reduce cost mildly with model size, normalised
// to a ~11M-parameter ResNet18-class model.
func commScale(params float64) float64 {
	if params <= 0 {
		return 1
	}
	return 0.5 + 0.5*(params/11e6)
}

// --- Inference (edge CPU) ----------------------------------------------------

// CPUProfile models an edge inference device.
type CPUProfile struct {
	Name string
	// MaxCores is the number of physical cores.
	MaxCores int
	// FlopsPerCorePerGHz is the per-core, per-GHz effective throughput.
	FlopsPerCorePerGHz float64
	// MinFreqGHz and MaxFreqGHz bound the frequency system parameter.
	MinFreqGHz, MaxFreqGHz float64
	// MemBytesPerSec is the memory bandwidth ceiling.
	MemBytesPerSec float64
	// BytesPerFLOP approximates the model's memory traffic per FLOP
	// during inference (weights streaming dominates at batch 1).
	BytesPerFLOP float64
	// BatchSetupSec is the fixed per-batch dispatch overhead; it is what
	// makes batching pay off.
	BatchSetupSec float64
	// MemBatchKnee is the batch size beyond which activations thrash the
	// device's small memory.
	MemBatchKnee float64
	// MemPressureFactor scales the slowdown past the knee.
	MemPressureFactor float64
	// IdlePowerW is the device's baseline draw.
	IdlePowerW float64
	// CorePowerW is each active core's additional draw at the reference
	// 1 GHz; dynamic power scales ~quadratically with frequency.
	CorePowerW float64
}

// InferSpec describes one inference configuration at paper scale.
type InferSpec struct {
	// FLOPsPerSample is the paper-scale forward cost per sample.
	FLOPsPerSample float64
	// Params is the paper-scale parameter count (memory footprint).
	Params float64
	// BatchSize is the number of samples per inference call.
	BatchSize int
	// Cores is the number of cores enabled.
	Cores int
	// FreqGHz is the configured clock frequency.
	FreqGHz float64
}

func (s InferSpec) validate(p CPUProfile) error {
	switch {
	case s.FLOPsPerSample <= 0:
		return fmt.Errorf("perfmodel: FLOPsPerSample %v must be positive", s.FLOPsPerSample)
	case s.BatchSize < 1:
		return fmt.Errorf("perfmodel: BatchSize %d must be >= 1", s.BatchSize)
	case s.Cores < 1:
		return fmt.Errorf("perfmodel: Cores %d must be >= 1", s.Cores)
	case s.Cores > p.MaxCores:
		return fmt.Errorf("perfmodel: Cores %d exceeds device max %d", s.Cores, p.MaxCores)
	case s.FreqGHz < p.MinFreqGHz || s.FreqGHz > p.MaxFreqGHz:
		return fmt.Errorf("perfmodel: FreqGHz %v out of [%v, %v]", s.FreqGHz, p.MinFreqGHz, p.MaxFreqGHz)
	}
	return nil
}

// InferResult reports the emulated inference performance of one
// configuration.
type InferResult struct {
	// BatchLatency is the time to process one batch.
	BatchLatency time.Duration
	// Throughput is samples per second.
	Throughput float64
	// EnergyPerSampleJ is joules per sample, the paper's J/img metric.
	EnergyPerSampleJ float64
	// PowerW is the average power draw while processing.
	PowerW float64
}

// InferenceCost evaluates an inference configuration on a device.
//
// Per-sample work can only exploit multiple cores when a batch offers
// sample-level parallelism (Amdahl with parallel fraction growing in the
// batch size); the memory-bandwidth roofline then caps multi-core gains
// — together these yield the Figure 5 shapes. A fixed per-batch setup
// cost makes batching pay off until the memory knee reverses it —
// the Figure 3b shape.
func InferenceCost(spec InferSpec, prof CPUProfile) (InferResult, error) {
	if err := spec.validate(prof); err != nil {
		return InferResult{}, err
	}
	batch := float64(spec.BatchSize)
	flopsPerBatch := spec.FLOPsPerSample * batch

	// Parallel fraction: one sample is mostly sequential layer-by-layer
	// work; a batch parallelises across samples.
	parallel := (batch - 1 + 0.15) / (batch + 0.15)
	cores := float64(spec.Cores)
	amdahl := 1 / ((1 - parallel) + parallel/cores)

	computeRate := prof.FlopsPerCorePerGHz * spec.FreqGHz // one core
	computeSec := flopsPerBatch / (computeRate * amdahl)

	// Memory roofline: weights stream once per batch; activations scale
	// with batch.
	trafficBytes := spec.Params*4 + flopsPerBatch*prof.BytesPerFLOP
	memSec := trafficBytes / prof.MemBytesPerSec

	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	// Memory pressure past the batch knee (activations exceed cache).
	if batch > prof.MemBatchKnee {
		over := batch/prof.MemBatchKnee - 1
		sec *= 1 + prof.MemPressureFactor*over*over
	}
	sec += prof.BatchSetupSec

	// Power: enabled cores draw dynamic power scaled by f² (voltage
	// tracks frequency), modulated by how busy they are. Utilisation is
	// the single-core compute time spread across the enabled cores for
	// the batch's wall time.
	util := (flopsPerBatch / computeRate) / (cores * sec)
	if util > 1 {
		util = 1
	}
	freqScale := (spec.FreqGHz / prof.MaxFreqGHz) * (spec.FreqGHz / prof.MaxFreqGHz)
	power := prof.IdlePowerW + cores*prof.CorePowerW*freqScale*(0.35+0.65*util)

	energy := power * sec
	return InferResult{
		BatchLatency:     secondsToDuration(sec),
		Throughput:       batch / sec,
		EnergyPerSampleJ: energy / batch,
		PowerW:           power,
	}, nil
}

// secondsToDuration converts seconds to time.Duration, guarding against
// overflow for pathological inputs.
func secondsToDuration(sec float64) time.Duration {
	const maxSec = float64(1<<62) / float64(time.Second)
	if sec > maxSec {
		sec = maxSec
	}
	if sec < 0 {
		sec = 0
	}
	return time.Duration(sec * float64(time.Second))
}

// ErrUnknownDevice is returned by profile lookups for unknown names.
var ErrUnknownDevice = errors.New("perfmodel: unknown device")
