package perfmodel

// Ablation studies for the performance model's design choices
// (DESIGN.md §5): each mechanism is disabled in isolation and the test
// asserts that the corresponding paper shape disappears — evidence that
// the mechanism, and nothing else, produces the behaviour.

import (
	"testing"
	"time"
)

func ablTrain(batch, gpus int) TrainSpec {
	return TrainSpec{
		FLOPsPerSample: 5.6e8,
		Params:         11e6,
		Samples:        50000,
		Epochs:         10,
		BatchSize:      batch,
		GPUs:           gpus,
	}
}

func trainDur(t *testing.T, spec TrainSpec, prof GPUProfile) time.Duration {
	t.Helper()
	c, err := TrainingCost(spec, prof)
	if err != nil {
		t.Fatal(err)
	}
	return c.Duration
}

// Without the communication term, small-batch multi-GPU training would
// wrongly speed up — the Figure 4a inversion comes from communication.
func TestAblationCommunicationCausesFig4a(t *testing.T) {
	noComm := TitanRTX()
	noComm.CommSecPerStepPerGPU = 0

	full1 := trainDur(t, ablTrain(32, 1), TitanRTX())
	full8 := trainDur(t, ablTrain(32, 8), TitanRTX())
	if full8 <= full1 {
		t.Fatal("baseline lost the Figure 4a inversion")
	}
	abl8 := trainDur(t, ablTrain(32, 8), noComm)
	abl1 := trainDur(t, ablTrain(32, 1), noComm)
	if abl8 >= abl1 {
		t.Errorf("without communication, 8 GPUs should be faster: %v vs %v", abl8, abl1)
	}
}

// Without the parallel-efficiency exponent, large-batch scaling would be
// nearly ideal — the sublinearity of Figure 4b needs it.
func TestAblationEfficiencyExponentCausesSublinearity(t *testing.T) {
	ideal := TitanRTX()
	ideal.ParallelEffExp = 0
	ideal.CommSecPerStepPerGPU = 0

	d1 := trainDur(t, ablTrain(1024, 1), ideal)
	d8 := trainDur(t, ablTrain(1024, 8), ideal)
	speedup := d1.Seconds() / d8.Seconds()
	if speedup < 7 {
		t.Errorf("ideal profile speedup = %.2f, expected near-linear (>7)", speedup)
	}

	real1 := trainDur(t, ablTrain(1024, 1), TitanRTX())
	real8 := trainDur(t, ablTrain(1024, 8), TitanRTX())
	if s := real1.Seconds() / real8.Seconds(); s >= 7 {
		t.Errorf("full model speedup = %.2f, want sublinear", s)
	}
}

// Without the memory knee, batch 1024 would be as fast as 256 — the
// Figure 3a slowdown comes from memory pressure.
func TestAblationMemoryKneeCausesFig3a(t *testing.T) {
	noKnee := TitanRTX()
	noKnee.MemPressureFactor = 0

	d256 := trainDur(t, ablTrain(256, 1), noKnee)
	d1024 := trainDur(t, ablTrain(1024, 1), noKnee)
	if ratio := d1024.Seconds() / d256.Seconds(); ratio > 1.05 {
		t.Errorf("without the knee, 1024 vs 256 ratio = %.3f, want ~1", ratio)
	}
}

// Without the batch-fill utilisation term, 256 and 512 would consume the
// same energy — the Figure 3a energy gap needs it.
func TestAblationBatchFillCausesEnergyGap(t *testing.T) {
	noFill := TitanRTX()
	noFill.UtilBatchRef = 0

	c256, err := TrainingCost(ablTrain(256, 1), noFill)
	if err != nil {
		t.Fatal(err)
	}
	c512, err := TrainingCost(ablTrain(512, 1), noFill)
	if err != nil {
		t.Fatal(err)
	}
	gap := c512.EnergyJ / c256.EnergyJ
	if gap > 1.02 {
		t.Errorf("without batch fill, energy gap = %.3f, want ~1", gap)
	}
}

func ablCPU() CPUProfile {
	return CPUProfile{
		Name: "abl", MaxCores: 4, FlopsPerCorePerGHz: 4e9,
		MinFreqGHz: 1.2, MaxFreqGHz: 3.5,
		MemBytesPerSec: 1.2e10, BytesPerFLOP: 0.42,
		BatchSetupSec: 0.005, MemBatchKnee: 40, MemPressureFactor: 0.8,
		IdlePowerW: 2, CorePowerW: 3.5,
	}
}

func ablInfer(batch, cores int) InferSpec {
	return InferSpec{FLOPsPerSample: 5.6e8, Params: 11e6, BatchSize: batch, Cores: cores, FreqGHz: 3.5}
}

// Without the memory-bandwidth roofline, 4 cores would clearly beat 2 at
// batch 10 — the Figure 5b knee is the roofline.
func TestAblationRooflineCausesFig5bKnee(t *testing.T) {
	unbounded := ablCPU()
	unbounded.MemBytesPerSec = 1e15

	r2, err := InferenceCost(ablInfer(10, 2), unbounded)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := InferenceCost(ablInfer(10, 4), unbounded)
	if err != nil {
		t.Fatal(err)
	}
	if gain := r4.Throughput / r2.Throughput; gain < 1.3 {
		t.Errorf("without the roofline, 4-core gain = %.2f, want clearly above 1.3", gain)
	}
}

// Without the per-batch setup cost, batching would not pay off at all —
// Figure 3b's rise needs the setup amortisation.
func TestAblationSetupCostCausesBatchingGain(t *testing.T) {
	noSetup := ablCPU()
	noSetup.BatchSetupSec = 0

	r1, err := InferenceCost(ablInfer(1, 4), noSetup)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := InferenceCost(ablInfer(10, 4), noSetup)
	if err != nil {
		t.Fatal(err)
	}
	// Some gain remains (sample-level parallelism), but the setup term
	// is the dominant effect at small batches on the full profile.
	gainWithout := r10.Throughput / r1.Throughput

	f1, err := InferenceCost(ablInfer(1, 4), ablCPU())
	if err != nil {
		t.Fatal(err)
	}
	f10, err := InferenceCost(ablInfer(10, 4), ablCPU())
	if err != nil {
		t.Fatal(err)
	}
	gainWith := f10.Throughput / f1.Throughput
	if gainWith <= gainWithout {
		t.Errorf("setup cost should amplify the batching gain: %.2f (with) vs %.2f (without)",
			gainWith, gainWithout)
	}
}

// Benchmarks for the ablation variants, so `-bench` surfaces the cost of
// each modelling term.
func BenchmarkTrainingCostFull(b *testing.B) {
	spec := ablTrain(256, 4)
	prof := TitanRTX()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainingCost(spec, prof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainingCostNoComm(b *testing.B) {
	spec := ablTrain(256, 4)
	prof := TitanRTX()
	prof.CommSecPerStepPerGPU = 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainingCost(spec, prof); err != nil {
			b.Fatal(err)
		}
	}
}
