package perfmodel

import (
	"testing"
	"testing/quick"

	"edgetune/internal/sim"
)

// refTrain is a ResNet18-class CIFAR10 training run: 50k samples, 10
// epochs (the reference configuration of the motivation figures).
func refTrain() TrainSpec {
	return TrainSpec{
		FLOPsPerSample: 5.6e8,
		Params:         11e6,
		Samples:        50000,
		Epochs:         10,
		BatchSize:      32,
		GPUs:           1,
	}
}

// testCPU is a 4-core edge device calibrated like the i7 testbed node.
func testCPU() CPUProfile {
	return CPUProfile{
		Name:               "test-cpu",
		MaxCores:           4,
		FlopsPerCorePerGHz: 4e9,
		MinFreqGHz:         1.2,
		MaxFreqGHz:         3.5,
		MemBytesPerSec:     1.2e10,
		BytesPerFLOP:       0.42,
		BatchSetupSec:      0.005,
		MemBatchKnee:       40,
		MemPressureFactor:  0.8,
		IdlePowerW:         2,
		CorePowerW:         3.5,
	}
}

func refInfer(batch, cores int) InferSpec {
	return InferSpec{
		FLOPsPerSample: 5.6e8,
		Params:         11e6,
		BatchSize:      batch,
		Cores:          cores,
		FreqGHz:        3.5,
	}
}

func mustTrain(t *testing.T, spec TrainSpec) Cost {
	t.Helper()
	c, err := TrainingCost(spec, TitanRTX())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustInfer(t *testing.T, spec InferSpec) InferResult {
	t.Helper()
	r, err := InferenceCost(spec, testCPU())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTrainSpecValidation(t *testing.T) {
	base := refTrain()
	mutate := []func(*TrainSpec){
		func(s *TrainSpec) { s.FLOPsPerSample = 0 },
		func(s *TrainSpec) { s.Samples = -1 },
		func(s *TrainSpec) { s.Epochs = 0 },
		func(s *TrainSpec) { s.BatchSize = 0 },
		func(s *TrainSpec) { s.GPUs = 0 },
		func(s *TrainSpec) { s.GPUs = 99 },
	}
	for i, m := range mutate {
		spec := base
		m(&spec)
		if _, err := TrainingCost(spec, TitanRTX()); err == nil {
			t.Errorf("case %d: invalid spec did not error", i)
		}
	}
}

func TestTrainingBaselineMagnitude(t *testing.T) {
	// The reference run should land in the paper's tens-of-minutes range.
	c := mustTrain(t, refTrain())
	minutes := c.Duration.Minutes()
	if minutes < 5 || minutes > 120 {
		t.Errorf("reference training = %.1f min, want 5-120", minutes)
	}
	if c.KJ() < 10 || c.KJ() > 2000 {
		t.Errorf("reference training energy = %.1f kJ, out of plausible band", c.KJ())
	}
}

// TestFig2aDepthScaling: training runtime and energy grow with depth.
func TestFig2aDepthScaling(t *testing.T) {
	var prev Cost
	for i, layers := range []float64{18, 34, 50} {
		spec := refTrain()
		spec.FLOPsPerSample = layers / 18 * 5.6e8
		spec.Params = layers / 18 * 11e6
		c := mustTrain(t, spec)
		if i > 0 && (c.Duration <= prev.Duration || c.EnergyJ <= prev.EnergyJ) {
			t.Errorf("depth %v: runtime/energy did not grow (%v vs %v)", layers, c, prev)
		}
		prev = c
	}
}

// TestFig3aTrainingBatch: 256 and 512 run in similar time but different
// energy; 1024 is slower and more energy-hungry than both.
func TestFig3aTrainingBatch(t *testing.T) {
	cost := func(batch int) Cost {
		spec := refTrain()
		spec.BatchSize = batch
		return mustTrain(t, spec)
	}
	c256, c512, c1024 := cost(256), cost(512), cost(1024)

	ratioTime := c256.Duration.Seconds() / c512.Duration.Seconds()
	if ratioTime < 0.95 || ratioTime > 1.1 {
		t.Errorf("time(256)/time(512) = %.3f, want ~1", ratioTime)
	}
	energyGap := c512.EnergyJ / c256.EnergyJ
	if energyGap < 1.05 {
		t.Errorf("energy(512)/energy(256) = %.3f, want distinguishable (>1.05)", energyGap)
	}
	if c1024.Duration.Seconds() < 1.3*c512.Duration.Seconds() {
		t.Errorf("batch 1024 not clearly slower: %v vs %v", c1024.Duration, c512.Duration)
	}
	if c1024.EnergyJ <= c512.EnergyJ {
		t.Error("batch 1024 should cost the most energy")
	}
}

// TestFig4aSmallBatchMultiGPU: at batch 32, adding GPUs makes training
// slower (communication-bound); the paper reports up to ~120% worse.
func TestFig4aSmallBatchMultiGPU(t *testing.T) {
	cost := func(gpus int) Cost {
		spec := refTrain()
		spec.GPUs = gpus
		return mustTrain(t, spec)
	}
	c1, c4, c8 := cost(1), cost(4), cost(8)
	if c4.Duration <= c1.Duration {
		t.Errorf("4 GPUs at batch 32 should be slower: %v vs %v", c4.Duration, c1.Duration)
	}
	ratio := c8.Duration.Seconds() / c1.Duration.Seconds()
	if ratio < 1.8 || ratio > 3.0 {
		t.Errorf("time(8 GPU)/time(1 GPU) at batch 32 = %.2f, want ~2.2 (+120%%)", ratio)
	}
	if c8.EnergyJ <= c1.EnergyJ {
		t.Error("8 GPUs at batch 32 should cost more energy")
	}
}

// TestFig4bLargeBatchMultiGPU: at batch 1024, runtime improves but
// sublinearly, and energy grows despite the lower runtime.
func TestFig4bLargeBatchMultiGPU(t *testing.T) {
	cost := func(gpus int) Cost {
		spec := refTrain()
		spec.BatchSize = 1024
		spec.GPUs = gpus
		return mustTrain(t, spec)
	}
	c1, c8 := cost(1), cost(8)
	speedup := c1.Duration.Seconds() / c8.Duration.Seconds()
	if speedup <= 1.5 {
		t.Errorf("8-GPU speedup at batch 1024 = %.2f, want > 1.5", speedup)
	}
	if speedup >= 7 {
		t.Errorf("8-GPU speedup at batch 1024 = %.2f, want sublinear (< 7)", speedup)
	}
	if c8.EnergyJ <= c1.EnergyJ {
		t.Errorf("energy should grow with GPUs even when faster: %v vs %v J", c8.EnergyJ, c1.EnergyJ)
	}
}

func TestInferSpecValidation(t *testing.T) {
	base := refInfer(10, 2)
	mutate := []func(*InferSpec){
		func(s *InferSpec) { s.FLOPsPerSample = 0 },
		func(s *InferSpec) { s.BatchSize = 0 },
		func(s *InferSpec) { s.Cores = 0 },
		func(s *InferSpec) { s.Cores = 16 },
		func(s *InferSpec) { s.FreqGHz = 0.1 },
		func(s *InferSpec) { s.FreqGHz = 9 },
	}
	for i, m := range mutate {
		spec := base
		m(&spec)
		if _, err := InferenceCost(spec, testCPU()); err == nil {
			t.Errorf("case %d: invalid spec did not error", i)
		}
	}
}

// TestFig2bInferenceDepth: throughput falls and per-image energy rises
// with model depth.
func TestFig2bInferenceDepth(t *testing.T) {
	var prev InferResult
	for i, layers := range []float64{18, 34, 50} {
		spec := refInfer(10, 4)
		spec.FLOPsPerSample = layers / 18 * 5.6e8
		spec.Params = layers / 18 * 11e6
		r := mustInfer(t, spec)
		if i > 0 {
			if r.Throughput >= prev.Throughput {
				t.Errorf("depth %v: throughput did not drop (%v vs %v)", layers, r.Throughput, prev.Throughput)
			}
			if r.EnergyPerSampleJ <= prev.EnergyPerSampleJ {
				t.Errorf("depth %v: J/img did not rise", layers)
			}
		}
		prev = r
	}
}

// TestFig3bInferenceBatchSweetSpot: throughput rises from batch 1 to 10,
// then decays by batch 100; J/img improves with batching then worsens.
func TestFig3bInferenceBatchSweetSpot(t *testing.T) {
	r1 := mustInfer(t, refInfer(1, 4))
	r10 := mustInfer(t, refInfer(10, 4))
	r100 := mustInfer(t, refInfer(100, 4))
	if r10.Throughput <= r1.Throughput {
		t.Errorf("batch 10 throughput %v not above batch 1 %v", r10.Throughput, r1.Throughput)
	}
	if r100.Throughput >= r10.Throughput {
		t.Errorf("batch 100 throughput %v should decay below batch 10 %v", r100.Throughput, r10.Throughput)
	}
	if r10.EnergyPerSampleJ >= r1.EnergyPerSampleJ {
		t.Errorf("batch 10 J/img %v not below batch 1 %v", r10.EnergyPerSampleJ, r1.EnergyPerSampleJ)
	}
	if r100.EnergyPerSampleJ <= r10.EnergyPerSampleJ {
		t.Errorf("batch 100 J/img %v should rise above batch 10 %v", r100.EnergyPerSampleJ, r10.EnergyPerSampleJ)
	}
}

// TestFig5aSingleSampleCores: batch-1 throughput is ~flat in cores while
// energy per image rises.
func TestFig5aSingleSampleCores(t *testing.T) {
	r1 := mustInfer(t, refInfer(1, 1))
	r4 := mustInfer(t, refInfer(1, 4))
	gain := r4.Throughput / r1.Throughput
	if gain > 1.25 {
		t.Errorf("batch-1 core scaling gain = %.2f, want ~flat (<1.25)", gain)
	}
	if r4.EnergyPerSampleJ <= r1.EnergyPerSampleJ {
		t.Errorf("batch-1 energy should rise with cores: %v vs %v", r4.EnergyPerSampleJ, r1.EnergyPerSampleJ)
	}
}

// TestFig5bMultiSampleCores: at batch 10, cores help, but 4 cores beat 2
// by only a small margin (paper: ~9%) while drawing ~33% more power.
func TestFig5bMultiSampleCores(t *testing.T) {
	r1 := mustInfer(t, refInfer(10, 1))
	r2 := mustInfer(t, refInfer(10, 2))
	r4 := mustInfer(t, refInfer(10, 4))
	if r2.Throughput <= 1.2*r1.Throughput {
		t.Errorf("2 cores should clearly beat 1: %v vs %v", r2.Throughput, r1.Throughput)
	}
	tpGain := r4.Throughput / r2.Throughput
	if tpGain < 1.02 || tpGain > 1.3 {
		t.Errorf("throughput(4)/throughput(2) = %.3f, want small gain ~1.1", tpGain)
	}
	powerGain := r4.PowerW / r2.PowerW
	if powerGain < 1.15 {
		t.Errorf("power(4)/power(2) = %.3f, want ~1.33", powerGain)
	}
	if powerGain/tpGain < 1.1 {
		t.Errorf("4 cores should be clearly less energy-efficient: power x%.2f vs tp x%.2f", powerGain, tpGain)
	}
}

// TestFrequencyScaling: lower frequency means lower throughput but also
// lower power (the DVFS trade-off the inference tuner explores).
func TestFrequencyScaling(t *testing.T) {
	hi := mustInfer(t, refInfer(10, 4))
	lo := refInfer(10, 4)
	lo.FreqGHz = 1.2
	rlo := mustInfer(t, lo)
	if rlo.Throughput >= hi.Throughput {
		t.Error("lower frequency should reduce throughput")
	}
	if rlo.PowerW >= hi.PowerW {
		t.Error("lower frequency should reduce power")
	}
}

// Property: costs are always non-negative and monotone in work volume.
func TestCostProperties(t *testing.T) {
	rng := sim.NewRNG(1)
	f := func(uint8) bool {
		spec := TrainSpec{
			FLOPsPerSample: rng.Range(1e7, 1e10),
			Params:         rng.Range(1e6, 1e8),
			Samples:        rng.Range(1000, 200000),
			Epochs:         1 + rng.Intn(30),
			BatchSize:      32 << rng.Intn(5),
			GPUs:           1 + rng.Intn(8),
		}
		c, err := TrainingCost(spec, TitanRTX())
		if err != nil || c.Duration < 0 || c.EnergyJ < 0 {
			return false
		}
		// Doubling epochs must not decrease cost.
		spec2 := spec
		spec2.Epochs *= 2
		c2, err := TrainingCost(spec2, TitanRTX())
		if err != nil {
			return false
		}
		return c2.Duration >= c.Duration && c2.EnergyJ >= c.EnergyJ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInferenceProperties(t *testing.T) {
	rng := sim.NewRNG(2)
	prof := testCPU()
	f := func(uint8) bool {
		spec := InferSpec{
			FLOPsPerSample: rng.Range(1e7, 5e9),
			Params:         rng.Range(1e6, 5e7),
			BatchSize:      1 + rng.Intn(128),
			Cores:          1 + rng.Intn(prof.MaxCores),
			FreqGHz:        rng.Range(prof.MinFreqGHz, prof.MaxFreqGHz),
		}
		r, err := InferenceCost(spec, prof)
		if err != nil {
			return false
		}
		return r.Throughput > 0 && r.EnergyPerSampleJ > 0 && r.BatchLatency > 0 && r.PowerW > prof.IdlePowerW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCostAddAndKJ(t *testing.T) {
	a := Cost{Duration: 1e9, EnergyJ: 1500}
	b := Cost{Duration: 2e9, EnergyJ: 500}
	sum := a.Add(b)
	if sum.Duration != 3e9 || sum.EnergyJ != 2000 {
		t.Errorf("Add = %+v", sum)
	}
	if sum.KJ() != 2 {
		t.Errorf("KJ = %v, want 2", sum.KJ())
	}
}
