package energy

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.TotalJ() != 0 {
		t.Error("zero meter not empty")
	}
	if err := m.Charge("x", 5); err != nil {
		t.Fatal(err)
	}
	if m.TotalJ() != 5 {
		t.Error("zero-value meter unusable")
	}
}

func TestChargeAccumulates(t *testing.T) {
	m := NewMeter()
	if err := m.Charge("train", 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge("train", 50); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge("infer", 25); err != nil {
		t.Fatal(err)
	}
	if got := m.Component("train"); got != 150 {
		t.Errorf("train = %v, want 150", got)
	}
	if got := m.TotalJ(); got != 175 {
		t.Errorf("total = %v, want 175", got)
	}
	if got := m.TotalKJ(); got != 0.175 {
		t.Errorf("kJ = %v, want 0.175", got)
	}
}

func TestNegativeChargesRejected(t *testing.T) {
	m := NewMeter()
	if err := m.Charge("x", -1); err == nil {
		t.Error("negative charge accepted")
	}
	if err := m.ChargePower("x", -1, time.Second); err == nil {
		t.Error("negative power accepted")
	}
	if err := m.ChargePower("x", 1, -time.Second); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestChargePower(t *testing.T) {
	m := NewMeter()
	if err := m.ChargePower("gpu", 250, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := m.Component("gpu"); got != 250*120 {
		t.Errorf("power integration = %v, want 30000", got)
	}
}

func TestBreakdownIsCopy(t *testing.T) {
	m := NewMeter()
	_ = m.Charge("a", 1)
	b := m.Breakdown()
	b["a"] = 999
	if m.Component("a") != 1 {
		t.Error("Breakdown leaks internal state")
	}
}

func TestComponentsSorted(t *testing.T) {
	m := NewMeter()
	_ = m.Charge("z", 1)
	_ = m.Charge("a", 1)
	got := m.Components()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Errorf("Components = %v, want [a z]", got)
	}
}

func TestReset(t *testing.T) {
	m := NewMeter()
	_ = m.Charge("a", 1)
	m.Reset()
	if m.TotalJ() != 0 {
		t.Error("Reset did not clear meter")
	}
}

func TestConcurrentCharges(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = m.Charge("x", 1)
			}
		}()
	}
	wg.Wait()
	if got := m.TotalJ(); got != 8000 {
		t.Errorf("concurrent total = %v, want 8000", got)
	}
}

// Property: total equals the sum of the breakdown and never decreases.
func TestTotalMatchesBreakdown(t *testing.T) {
	m := NewMeter()
	f := func(charges []uint16) bool {
		for i, c := range charges {
			comp := "c" + string(rune('a'+i%3))
			if err := m.Charge(comp, float64(c)); err != nil {
				return false
			}
		}
		var sum float64
		for _, v := range m.Breakdown() {
			sum += v
		}
		return sum == m.TotalJ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
