// Package energy provides the energy-accounting substrate standing in
// for the paper's PyRAPL measurements: a thread-safe meter that
// integrates simulated power over simulated time, broken down by
// component so tuning energy and inference energy can be reported
// separately (as the paper's figures do).
package energy

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Meter accumulates energy charges by component. The zero value is ready
// to use and safe for concurrent use.
type Meter struct {
	mu     sync.Mutex
	joules map[string]float64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// Charge adds joules to a component's tally. Negative charges are
// rejected with an error: energy only accumulates.
func (m *Meter) Charge(component string, joules float64) error {
	if joules < 0 {
		return fmt.Errorf("energy: negative charge %v for %q", joules, component)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.joules == nil {
		m.joules = make(map[string]float64)
	}
	m.joules[component] += joules
	return nil
}

// ChargePower integrates a constant power draw over a duration.
func (m *Meter) ChargePower(component string, watts float64, d time.Duration) error {
	if watts < 0 {
		return fmt.Errorf("energy: negative power %v for %q", watts, component)
	}
	if d < 0 {
		return fmt.Errorf("energy: negative duration %v for %q", d, component)
	}
	return m.Charge(component, watts*d.Seconds())
}

// TotalJ reports the total accumulated energy in joules.
func (m *Meter) TotalJ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t float64
	for _, j := range m.joules {
		t += j
	}
	return t
}

// TotalKJ reports the total in kilojoules, the paper's unit.
func (m *Meter) TotalKJ() float64 { return m.TotalJ() / 1000 }

// Component reports one component's joules.
func (m *Meter) Component(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.joules[name]
}

// Breakdown returns a copy of the per-component tallies.
func (m *Meter) Breakdown() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.joules))
	for k, v := range m.joules {
		out[k] = v
	}
	return out
}

// Components returns the charged component names, sorted.
func (m *Meter) Components() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.joules))
	for k := range m.joules {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset clears all tallies.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.joules = nil
	m.mu.Unlock()
}
