// Edgedevices tunes the same workload for each of the paper's three
// edge devices (§2.1: ARMv7 board, Raspberry Pi 3B+, Intel i7) and
// shows how the inference recommendation adapts to the hardware — the
// scenario where "the tuned model might be deployed across different
// edge devices".
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"edgetune"
)

func main() {
	// Share one persistent historical store across the three jobs: an
	// architecture tuned for a device once is never re-tuned (§3.4).
	storePath := filepath.Join(os.TempDir(), "edgetune-history.json")
	defer os.Remove(storePath)

	fmt.Println("inference recommendations for the OD workload across edge devices")
	fmt.Printf("%-10s %-8s %-8s %-12s %-22s %s\n",
		"device", "batch", "cores", "freq [GHz]", "throughput [samples/s]", "J/sample")
	for _, dev := range edgetune.Devices() {
		report, err := edgetune.Tune(context.Background(), edgetune.Job{
			Workload:     "OD",
			Device:       dev,
			Metric:       edgetune.MetricEnergy, // battery-powered targets
			StopAtTarget: true,
			StorePath:    storePath,
			Seed:         9,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec := report.Recommendation
		fmt.Printf("%-10s %-8d %-8d %-12.2f %-22.2f %.3f\n",
			rec.Device, rec.BatchSize, rec.Cores, rec.FrequencyGHz,
			rec.Throughput, rec.EnergyPerSampleJ)
	}
	fmt.Println("\nthe memory-constrained Pi gets a smaller batch; the i7 can afford deeper batching.")
}
