// Chaos: run a tuning job under deterministic fault injection — trial
// crashes, NaN divergence, stragglers, a flaky edge device, store write
// failures, and dropped inference replies — and show how the tuner
// rides it out with retries, a circuit breaker, and degraded fallbacks
// while still producing a recommendation. Re-running with the same seed
// replays the exact same faults and the exact same report.
package main

import (
	"context"
	"fmt"
	"log"

	"edgetune"
)

func main() {
	report, err := edgetune.Tune(context.Background(), edgetune.Job{
		Workload: "IC",
		Configs:  4,
		Rungs:    4,
		Brackets: 2,
		Seed:     42,
		Faults: edgetune.FaultConfig{
			TrialCrash:   0.15, // trials die partway through training
			TrialNaN:     0.05, // trials diverge after a full budget
			Straggler:    0.20, // trials run up to 4x slower
			DeviceFlap:   0.10, // the edge device drops tuning attempts
			StoreWrite:   0.10, // the historical store loses writes
			DroppedReply: 0.15, // inference replies vanish in flight
		},
		Checkpoint: true, // completed rungs survive a kill
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tuned %s through the chaos: %d trials, %.1f simulated minutes\n",
		report.Workload, report.TrialsRun, report.TuningMinutes)

	res := report.Resilience
	fmt.Printf("\nfaults injected: %d\n", res.TotalFaults)
	for _, f := range res.Faults {
		fmt.Printf("  %-15s %d\n", f.Class, f.Count)
	}
	fmt.Printf("retries: %d, degraded outcomes: %d\n", res.Retries, res.Degraded)
	fmt.Printf("breaker transitions (open/half-open/close): %d/%d/%d\n",
		res.BreakerOpens, res.BreakerHalfOpens, res.BreakerCloses)

	rec := report.Recommendation
	suffix := ""
	if report.RecommendationDegraded {
		suffix = " (degraded fallback)"
	}
	fmt.Printf("\nstill recommends%s: batch %d, %d cores at %.2f GHz on %s\n",
		suffix, rec.BatchSize, rec.Cores, rec.FrequencyGHz, rec.Device)
}
