// Chaos: run a tuning job under deterministic fault injection — trial
// crashes, NaN divergence, stragglers, a flaky edge device, store write
// failures, and dropped inference replies — and show how the tuner
// rides it out with retries, a circuit breaker, and degraded fallbacks
// while still producing a recommendation. Re-running with the same seed
// replays the exact same faults and the exact same report.
//
// With -store and -wal the job runs on the crash-consistent durable
// store, and -kill-after N turns the binary into a crash harness: the
// process dies (exit 3) right after the Nth acknowledged WAL append.
// Restart it with the same flags until it exits 0 — every restart
// recovers from disk, resumes from the last completed rung, and the
// final "digest:" line matches an uninterrupted same-seed run. That
// loop is the CI crash-recovery gate.
//
// With -cluster N and -cluster-dir the same job instead runs on a
// sharded cluster whose shards journal to WAL-shipped followers:
// -kill-shard-after R kills the job's shard after its Rth completed
// rung and fails over to the follower, and -fault-partition /
// -fault-lag drop or delay shipped frames. The final "digest:" line is
// computed identically, so CI can assert a failed-over sharded run
// converges to the same answer as an unsharded one. That is the CI
// cluster-failover gate.
//
// With -profile every stage runs under pprof labels and the report
// carries per-stage alloc probes; -cpuprofile additionally captures a
// CPU profile across the run (padding with extra same-shaped runs on
// varied seeds until enough labeled samples have accumulated), which
// `tracetool profile check` asserts carries the tenant/shard/rung
// labels. That is the CI profile-plane gate.
//
// With -flight the run is captured on the always-on flight recorder and
// anomaly triggers (a shard failover, crash-recovery salvage, an SLO
// alert) cut deterministic incident dossiers, written as JSON artefacts
// under -incidents-dir. Same-seed runs produce byte-identical dossiers
// (leave -profile off for those comparisons); `tracetool incident
// show|diff` inspects them. That is the CI flight-recorder gate.
//
// With -fuzz-replay the binary instead replays a chaos-fuzz repro
// artefact (see internal/chaosfuzz) and evaluates the full invariant
// registry: exit 0 when every invariant holds, exit 2 when any is
// violated. Every failure path propagates a non-zero exit code — the
// property the CI chaos-fuzz gate depends on.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"time"

	"edgetune"
	"edgetune/internal/chaosfuzz"
)

// errGate marks an invariant-gate failure: the run worked, the system
// under test failed the check. Exit 2, distinct from operational
// errors (exit 1) and the crash harness's deliberate kill (exit 3).
var errGate = errors.New("invariant gate failed")

func main() {
	switch err := run(); {
	case err == nil:
	case errors.Is(err, errGate):
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

// run holds the whole example so every failure returns an error —
// main translates them into exit codes, and deferred cleanups (the
// CPU profile writer) actually run on the way out.
func run() error {
	var (
		seed          = flag.Uint64("seed", 42, "job seed (faults and results replay exactly per seed)")
		storePath     = flag.String("store", "", "persist the historical store to this JSON file")
		wal           = flag.Bool("wal", false, "use the crash-consistent WAL-backed store (requires -store)")
		snapshotEvery = flag.Int("snapshot-every", 0, "WAL records between snapshot compactions (default 256)")
		killAfter     = flag.Int("kill-after", 0, "chaos: kill the process (exit 3) after the Nth acknowledged WAL append")

		clusterN       = flag.Int("cluster", 0, "run on a sharded cluster with this many nodes (requires -cluster-dir)")
		clusterDir     = flag.String("cluster-dir", "", "directory holding every cluster node's durable store")
		killShardAfter = flag.Int("kill-shard-after", 0, "chaos: kill the job's shard after its Nth completed rung and fail over")
		faultPartition = flag.Float64("fault-partition", 0, "probability a shipped WAL frame is dropped by a network partition")
		faultLag       = flag.Float64("fault-lag", 0, "probability a shipped WAL frame is delayed behind its successors")

		profileOn  = flag.Bool("profile", false, "run under pprof labels and report per-stage alloc probes")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (implies -profile)")

		flightOn     = flag.Bool("flight", false, "record the run on the always-on flight recorder; anomalies cut incident dossiers")
		incidentsDir = flag.String("incidents-dir", "", "write incident dossiers as JSON artefacts into this directory (implies -flight)")

		fuzzReplay = flag.String("fuzz-replay", "", "replay a chaos-fuzz repro artefact and gate on the invariant registry (exit 2 on violations)")
		fuzzPlant  = flag.Bool("fuzz-plant-double-charge", false, "plant the known retry-budget double-charge bug during -fuzz-replay (gate self-test)")
	)
	flag.Parse()

	if *fuzzReplay != "" {
		return runFuzzReplay(*fuzzReplay, *fuzzPlant)
	}

	if *cpuProfile != "" {
		*profileOn = true
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	job := edgetune.Job{
		Workload: "IC",
		Configs:  4,
		Rungs:    4,
		Brackets: 2,
		Seed:     *seed,
		Faults: edgetune.FaultConfig{
			TrialCrash:   0.15, // trials die partway through training
			TrialNaN:     0.05, // trials diverge after a full budget
			Straggler:    0.20, // trials run up to 4x slower
			DeviceFlap:   0.10, // the edge device drops tuning attempts
			StoreWrite:   0.10, // the historical store loses writes
			DroppedReply: 0.15, // inference replies vanish in flight
		},
		Checkpoint:            true, // completed rungs survive a kill
		StorePath:             *storePath,
		StoreWAL:              *wal,
		StoreSnapshotEvery:    *snapshotEvery,
		StoreKillAfterAppends: *killAfter,
		Profile:               *profileOn,
		Flight:                *flightOn,
		IncidentsDir:          *incidentsDir,
	}

	var (
		report *edgetune.Report
		err    error
	)
	if *clusterN > 0 {
		// Cluster shards own their durable stores; the single-node store
		// flags don't compose with this mode. The flight recorders move to
		// the cluster too — one ring per shard, so a dossier can span a
		// shard kill and its failover.
		job.StorePath, job.StoreWAL = "", false
		job.StoreSnapshotEvery, job.StoreKillAfterAppends = 0, 0
		job.Flight, job.IncidentsDir = false, ""
		report, err = runCluster(*clusterN, *clusterDir, *killShardAfter,
			*faultPartition, *faultLag, *snapshotEvery, *flightOn, *incidentsDir, job)
	} else {
		report, err = edgetune.Tune(context.Background(), job)
	}
	if err != nil {
		return err
	}

	fmt.Printf("tuned %s through the chaos: %d trials, %.1f simulated minutes\n",
		report.Workload, report.TrialsRun, report.TuningMinutes)

	if sr := report.StoreRecovery; sr != nil {
		fmt.Printf("store recovery: %s snapshot, %d replayed, %d quarantined, %d bytes truncated\n",
			sr.SnapshotSource, sr.RecordsReplayed, sr.RecordsQuarantined, sr.TruncatedBytes)
	}

	res := report.Resilience
	fmt.Printf("\nfaults injected: %d\n", res.TotalFaults)
	for _, f := range res.Faults {
		fmt.Printf("  %-15s %d\n", f.Class, f.Count)
	}
	fmt.Printf("retries: %d, degraded outcomes: %d\n", res.Retries, res.Degraded)
	fmt.Printf("breaker transitions (open/half-open/close): %d/%d/%d\n",
		res.BreakerOpens, res.BreakerHalfOpens, res.BreakerCloses)
	if res.ResumedRungs > 0 {
		fmt.Printf("resumed rungs: %d\n", res.ResumedRungs)
	}

	rec := report.Recommendation
	suffix := ""
	if report.RecommendationDegraded {
		suffix = " (degraded fallback)"
	}
	fmt.Printf("\nstill recommends%s: batch %d, %d cores at %.2f GHz on %s\n",
		suffix, rec.BatchSize, rec.Cores, rec.FrequencyGHz, rec.Device)
	fmt.Printf("digest: %s\n", digest(report))

	if len(report.Incidents) > 0 {
		fmt.Printf("\nincidents: %d\n", len(report.Incidents))
		for _, inc := range report.Incidents {
			fmt.Printf("  #%d %-17s at %.1fm  events=%d  %s\n",
				inc.Seq, inc.Trigger, inc.AtMinutes, inc.Events, inc.Digest)
			if inc.Path != "" {
				fmt.Printf("     dossier %s\n", inc.Path)
			}
		}
	}

	if len(report.Profile) > 0 {
		fmt.Printf("\nprofile (allocs/op, bytes/op):\n")
		for _, p := range report.Profile {
			fmt.Printf("  %-22s %8.1f  %10.0f\n", p.Stage, p.AllocsPerOp, p.BytesPerOp)
		}
	}
	if *cpuProfile != "" {
		// A single quick job rarely accrues enough 100Hz samples for every
		// pprof label to land in the profile; pad with extra same-shaped
		// runs on varied seeds (checkpointing would short-circuit a
		// same-seed rerun) until enough labeled CPU time has accumulated.
		if err := padProfile(job, *clusterN, *clusterDir, *snapshotEvery); err != nil {
			return err
		}
	}
	return nil
}

// runFuzzReplay replays a chaos-fuzz repro artefact through the real
// fuzz harness and evaluates the invariant registry, exactly like
// `tracetool fuzz replay` — exit 2 (via errGate) when any invariant is
// violated, so the committed corpus can gate CI through this example
// binary too.
func runFuzzReplay(path string, plant bool) error {
	rep, err := chaosfuzz.ReadRepro(path)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %s: seed=%d mode=%s events=%d\n",
		filepath.Base(path), rep.Schedule.Seed, rep.Schedule.Mode, len(rep.Schedule.Events))
	for _, ev := range rep.Schedule.Events {
		fmt.Printf("  %s\n", ev)
	}
	f := &chaosfuzz.Fuzzer{Runner: &chaosfuzz.Runner{
		Mode: rep.Schedule.Mode, Seed: rep.Schedule.Seed, PlantDoubleChargeRetry: plant,
	}}
	violations, _, err := f.Evaluate(rep.Schedule)
	if err != nil {
		return err
	}
	if len(violations) == 0 {
		fmt.Println("clean: all invariants hold")
		return nil
	}
	for _, v := range violations {
		fmt.Printf("FAIL %s: %s\n", v.Invariant, v.Detail)
	}
	return fmt.Errorf("%w: %d invariant violation(s)", errGate, len(violations))
}

// padProfile reruns the chaos job with varied seeds while the CPU
// profile is being captured, mirroring the primary run's mode so the
// samples carry the same label set (cluster runs add shard labels).
func padProfile(job edgetune.Job, clusterN int, clusterDir string, snapshotEvery int) error {
	deadline := time.Now().Add(1500 * time.Millisecond)
	for i := 1; time.Now().Before(deadline); i++ {
		j := job
		j.Seed = job.Seed + uint64(i)
		j.Profile = true
		// Padding runs are throwaway: never touch the primary run's store.
		j.StorePath, j.StoreWAL = "", false
		j.StoreSnapshotEvery, j.StoreKillAfterAppends = 0, 0
		if clusterN > 0 {
			c, err := edgetune.NewCluster(edgetune.ClusterOptions{
				Shards:        clusterN,
				Dir:           filepath.Join(clusterDir, fmt.Sprintf("p%d", i)),
				Seed:          j.Seed,
				SnapshotEvery: snapshotEvery,
			})
			if err != nil {
				return err
			}
			if _, err := c.Tune(context.Background(), j); err != nil {
				c.Close()
				return err
			}
			if err := c.Close(); err != nil {
				return err
			}
		} else if _, err := edgetune.Tune(context.Background(), j); err != nil {
			return err
		}
	}
	return nil
}

// runCluster executes the chaos job on a sharded cluster and reports
// how it was routed, then hands the inner report back so the digest is
// computed exactly as in the single-node path.
func runCluster(shards int, dir string, killAfterRungs int, partition, lag float64,
	snapshotEvery int, flight bool, incidentsDir string, job edgetune.Job) (*edgetune.Report, error) {
	if dir == "" {
		return nil, fmt.Errorf("-cluster requires -cluster-dir")
	}
	c, err := edgetune.NewCluster(edgetune.ClusterOptions{
		Shards: shards,
		Dir:    dir,
		Seed:   job.Seed,
		Faults: edgetune.FaultConfig{
			NetPartition: partition,
			FollowerLag:  lag,
		},
		KillShardAfterRungs: killAfterRungs,
		SnapshotEvery:       snapshotEvery,
		Flight:              flight,
		IncidentsDir:        incidentsDir,
	})
	if err != nil {
		return nil, err
	}
	rep, tuneErr := c.Tune(context.Background(), job)
	incidents := c.Incidents()
	if closeErr := c.Close(); tuneErr == nil {
		tuneErr = closeErr
	}
	if tuneErr != nil {
		return nil, tuneErr
	}
	fmt.Printf("cluster: %d shards, ran on %s, failed over: %v\n",
		shards, rep.Shard, rep.FailedOver)
	for _, ctr := range c.Metrics().Counters {
		switch ctr.Name {
		case "cluster.failovers", "cluster.ship.shipped", "cluster.ship.dropped", "cluster.ship.lagged":
			fmt.Printf("  %-21s %d\n", ctr.Name, ctr.Value)
		}
	}
	if len(incidents) > 0 {
		names := make([]string, 0, len(incidents))
		for name := range incidents {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, inc := range incidents[name] {
				fmt.Printf("  incident %s #%d %-17s at %.1fm  events=%d  %s\n",
					name, inc.Seq, inc.Trigger, inc.AtMinutes, inc.Events, inc.Digest)
			}
		}
	}
	return rep.Report, nil
}

// digest condenses the job outcome — winning configuration and the
// inference recommendation — into a hash, so the crash/restart harness
// can assert that a killed-and-resumed run converges to exactly the
// same answer as an uninterrupted one.
func digest(r *edgetune.Report) string {
	h := fnv.New64a()
	keys := make([]string, 0, len(r.BestConfig))
	for k := range r.BestConfig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%.9g;", k, r.BestConfig[k])
	}
	fmt.Fprintf(h, "acc=%.9g;", r.BestAccuracy)
	rec := r.Recommendation
	fmt.Fprintf(h, "rec=%s/%d/%d/%.9g/%.9g/%.9g/%.9g", rec.Device, rec.BatchSize,
		rec.Cores, rec.FrequencyGHz, rec.Throughput, rec.EnergyPerSampleJ, rec.LatencySeconds)
	return fmt.Sprintf("%016x", h.Sum64())
}
