// Multistream demonstrates the paper's Poisson multi-stream scenario
// (§3.4, Figure 8 bottom): single-sample inference queries arrive
// randomly, and aggregating them into batches can improve the overall
// mean response time — if the aggregation cap is tuned. The example
// sweeps arrival rates and compares per-sample dispatch against the
// tuned aggregation.
package main

import (
	"fmt"
	"log"

	"edgetune"
)

func main() {
	model := map[string]float64{"layers": 18}

	fmt.Println("multi-stream scenario: Poisson single-sample arrivals on the i7 edge node")
	fmt.Printf("%-14s %-10s %-20s %-20s %-12s\n",
		"rate [1/s]", "tuned cap", "mean response [ms]", "p95 response [ms]", "mean batch")
	for _, rate := range []float64{5, 20, 40, 80} {
		plan, err := edgetune.PlanMultiStream(edgetune.MultiStreamScenario{
			Workload:       "IC",
			ModelConfig:    model,
			Device:         "i7",
			ArrivalsPerSec: rate,
			Seed:           42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14g %-10d %-20.1f %-20.1f %-12.2f\n",
			rate, plan.BatchCap, plan.MeanResponseSec*1000, plan.P95ResponseSec*1000, plan.MeanBatch)
	}

	fmt.Println("\nwhy tuning matters at 40/s: response time by aggregation cap")
	for _, cap := range []int{1, 4, 16, 64} {
		plan, err := edgetune.PlanMultiStream(edgetune.MultiStreamScenario{
			Workload:       "IC",
			ModelConfig:    model,
			Device:         "i7",
			ArrivalsPerSec: 40,
			MaxBatch:       cap,
			Seed:           42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cap <= %-4d mean response %.1f ms\n", cap, plan.MeanResponseSec*1000)
	}
}
