// Budgetcompare contrasts the three trial-budget strategies of §4.3 —
// epoch-based, dataset-based, and the paper's multi-budget — on the
// image-classification workload (the paper's Figure 12 study), tuning
// each until the 80% target accuracy is reached (or the trial
// allotment runs out).
package main

import (
	"context"
	"fmt"
	"log"

	"edgetune"
)

func main() {
	fmt.Println("budget comparison on the IC workload (ResNet-class model, CIFAR10 analogue, target 80%)")
	fmt.Printf("%-10s %-14s %-14s %-10s %-10s %s\n",
		"budget", "tuning [m]", "tuning [kJ]", "trials", "max acc", "converged")
	for _, budget := range []edgetune.BudgetKind{
		edgetune.BudgetEpochs,
		edgetune.BudgetDataset,
		edgetune.BudgetMulti,
	} {
		report, err := edgetune.Tune(context.Background(), edgetune.Job{
			Workload:     "IC",
			Budget:       budget,
			StopAtTarget: true,
			Seed:         5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-14.1f %-14.1f %-10d %-10.3f %v\n",
			budget, report.TuningMinutes, report.TuningEnergyKJ,
			report.TrialsRun, report.MaxAccuracy, report.ReachedTarget)
	}
	fmt.Println("\nmulti-budget reaches the target at a fraction of the epoch budget's cost;")
	fmt.Println("the dataset budget is cheap per trial but cannot converge on one epoch.")
}
