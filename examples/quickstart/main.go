// Quickstart: tune the image-classification workload end-to-end with
// EdgeTune's defaults (onefold joint tuning, multi-budget trials, BOHB
// search, runtime objective) and print the trained configuration plus
// the inference deployment recommendation.
package main

import (
	"context"
	"fmt"
	"log"

	"edgetune"
)

func main() {
	report, err := edgetune.Tune(context.Background(), edgetune.Job{
		Workload:     "IC", // ResNet-class model on the CIFAR10 analogue
		StopAtTarget: true, // stop once a trial reaches 80% accuracy
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tuned %s in %.1f simulated minutes (%.1f kJ) over %d trials\n",
		report.Workload, report.TuningMinutes, report.TuningEnergyKJ, report.TrialsRun)
	fmt.Printf("reached target accuracy: %v (max observed %.3f)\n",
		report.ReachedTarget, report.MaxAccuracy)

	fmt.Println("\nbest joint configuration:")
	for name, value := range report.BestConfig {
		fmt.Printf("  %-12s %g\n", name, value)
	}

	rec := report.Recommendation
	fmt.Printf("\ndeploy for inference on %s with:\n", rec.Device)
	fmt.Printf("  batch size %d, %d cores at %.2f GHz\n", rec.BatchSize, rec.Cores, rec.FrequencyGHz)
	fmt.Printf("  expected: %.1f samples/s at %.3f J/sample\n", rec.Throughput, rec.EnergyPerSampleJ)
}
