// Serverbatching demonstrates the paper's fixed-frequency server
// scenario (§3.4, Figure 8 top): each query carries N samples arriving
// at a fixed frequency, and the deployment must decide how to split the
// samples into inference batches. The example sweeps several loads and
// prints the tuned split for each.
package main

import (
	"fmt"
	"log"

	"edgetune"
)

func main() {
	model := map[string]float64{"layers": 18} // a tuned ResNet18-class model

	fmt.Println("server scenario: 64-sample queries on the i7 edge node")
	fmt.Printf("%-18s %-8s %-18s %-16s %s\n", "query period [s]", "split", "response [ms]", "J/query", "stable")
	for _, period := range []float64{10, 5, 2, 1} {
		plan, err := edgetune.PlanServer(edgetune.ServerScenario{
			Workload:        "IC",
			ModelConfig:     model,
			Device:          "i7",
			SamplesPerQuery: 64,
			PeriodSec:       period,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18g %-8d %-18.1f %-16.2f %v\n",
			period, plan.Split, plan.ResponseSec*1000, plan.EnergyPerQueryJ, plan.Stable)
	}

	// The same deployment on a memory-constrained device needs smaller
	// splits: the Pi's batching knee comes much earlier.
	fmt.Println("\nsame load on the Raspberry Pi 3B+:")
	plan, err := edgetune.PlanServer(edgetune.ServerScenario{
		Workload:        "IC",
		ModelConfig:     model,
		Device:          "rpi3b+",
		SamplesPerQuery: 64,
		PeriodSec:       30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split %d, response %.1f ms, stable: %v\n",
		plan.Split, plan.ResponseSec*1000, plan.Stable)
}
