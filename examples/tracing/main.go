// Tracing: run a small faulted tuning job with the deterministic
// tracer and metrics registry enabled, write the span trace as JSON
// Lines and (optionally) Chrome trace-event JSON, and print a metrics
// digest. Same-seed runs produce byte-identical trace files — which is
// exactly what ci.sh checks by running this program twice and diffing
// the outputs. Load the Chrome file in Perfetto (ui.perfetto.dev) to
// see the tune → bracket → rung → trial → attempt hierarchy sheltering
// the serving track's request → admission → serve → device-attempt
// spans.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"edgetune"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 7, "job seed; same seed, same bytes")
		trace  = flag.String("trace", "trace.jsonl", "JSON Lines span output")
		chrome = flag.String("chrome", "", "Chrome trace-event output (Perfetto-loadable)")
	)
	flag.Parse()

	report, err := edgetune.Tune(context.Background(), edgetune.Job{
		Workload: "IC",
		Configs:  4,
		Rungs:    3,
		Brackets: 1,
		Seed:     *seed,
		Faults: edgetune.FaultConfig{
			TrialCrash:   0.15, // exercise retry + attempt spans
			Straggler:    0.20, // exercise straggler cost inflation
			DeviceFlap:   0.10, // exercise device-attempt retries
			DroppedReply: 0.10, // exercise resubmit + cache-hit spans
		},
		TracePath:       *trace,
		TraceChromePath: *chrome,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tuned %s in %d trials; trace written to %s\n",
		report.Workload, report.TrialsRun, *trace)
	for _, c := range report.Metrics.Counters {
		fmt.Printf("  %-32s %d\n", c.Name, c.Value)
	}
	for _, h := range report.Metrics.Histograms {
		fmt.Printf("  %-32s count=%d p50=%.3g p95=%.3g\n", h.Name, h.Count, h.P50, h.P95)
	}
	fmt.Printf("slo (horizon %.1f simulated minutes):\n", report.SLO.HorizonMinutes)
	for _, o := range report.SLO.Objectives {
		state := "ok"
		if o.Alerting {
			state = "ALERT"
		}
		fmt.Printf("  %-5s %-24s good=%.3f budget-used=%.2f (%d/%d errors)\n",
			state, o.Name, o.GoodFraction, o.ErrorBudgetUsed, o.Errors, o.Events)
	}
}
