// Overload drives the inference server well past its admission limit
// while one pool device browns out, and shows the serving safeguards
// working together: bounded-queue shedding, per-client rate limiting,
// critical-over-background priority, hedged requests racing a degraded
// device against its healthy twin, health-based quarantine, and a
// graceful drain that flushes every accepted result to the store.
// Everything is deterministic: re-running prints the same counters.
//
// Unlike the other examples this one drives the serving layer
// (internal/core) directly — the knobs it demonstrates sit below the
// top-level Job API.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/core"
	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

func main() {
	rec := counters.NewResilience()
	inj, err := fault.NewInjector(fault.Config{
		DeviceBrownout: 0.4, // attempts slow down by up to 8x...
		BrownoutFactor: 8,   // ...eroding the device's health score
		OverloadBurst:  0.1, // plus a synthetic admission-level spike
	}, 42, rec)
	if err != nil {
		log.Fatal(err)
	}

	w := workload.MustNew("IC", 1)
	primary := device.I7()
	twin := device.I7()
	twin.Profile.Name = "i7-b" // identical twin: a valid hedge target
	space, err := w.InferenceSpace(primary)
	if err != nil {
		log.Fatal(err)
	}

	st := store.New()
	srv, err := core.NewInferenceServer(core.InferenceServerOptions{
		Device:      primary,
		Pool:        []device.Device{primary, twin},
		Space:       space,
		Metric:      core.MetricRuntime,
		Trials:      8,
		Workers:     2,
		Store:       st,
		Seed:        42,
		Fault:       inj,
		Recorder:    rec,
		QueueLimit:  6,    // queued + inflight cap: the rest is shed
		RateLimit:   0.25, // chatty clients earn a quarter token per tick
		RateBurst:   2,
		HedgeFactor: 1.5, // hedge once an attempt runs 1.5x over budget
	})
	if err != nil {
		log.Fatal(err)
	}

	// Blast the server with more work than it admits: 8 background
	// prefetches first (so later critical arrivals preempt them at the
	// full queue), then 24 critical requests from distinct clients, and
	// one chatty client hammering the same architecture.
	ctx := context.Background()
	var outs []<-chan core.InferOutcome
	for i := 0; i < 8; i++ {
		outs = append(outs, srv.Submit(ctx, core.InferRequest{
			Signature:      fmt.Sprintf("IC/layers=%d", 50+i),
			FLOPsPerSample: 2.4e9,
			Params:         24e6,
			Priority:       core.PriorityBackground,
		}))
	}
	for i := 0; i < 24; i++ {
		outs = append(outs, srv.Submit(ctx, core.InferRequest{
			Signature:      fmt.Sprintf("IC/layers=%d", 18+i),
			FLOPsPerSample: 1.8e9,
			Params:         11e6,
		}))
	}
	for i := 0; i < 6; i++ {
		outs = append(outs, srv.Submit(ctx, core.InferRequest{
			Signature:      fmt.Sprintf("IC/layers=%d", 100+i),
			FLOPsPerSample: 1.8e9,
			Params:         11e6,
			Client:         "chatty-dashboard",
		}))
	}

	var ok, shed, limited, hedged int
	for _, ch := range outs {
		out := <-ch
		switch {
		case out.Err == nil:
			ok++
			if out.Hedged {
				hedged++
			}
		case errors.Is(out.Err, core.ErrRateLimited):
			limited++
		default:
			shed++
		}
	}

	// Orderly shutdown: reject new work, finish what was admitted,
	// flush the write-behind store buffer.
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("submitted %d requests past a queue limit of 6:\n", len(outs))
	fmt.Printf("  served %d (%d hedged), rate-limited %d, shed/preempted %d\n",
		ok, hedged, limited, shed)

	s := rec.Snapshot()
	fmt.Printf("\nserving counters (deterministic for seed 42):\n")
	fmt.Printf("  shed          %d\n", s.Shed)
	fmt.Printf("  rate limited  %d\n", s.RateLimited)
	fmt.Printf("  preempted     %d\n", s.Preempted)
	fmt.Printf("  hedges (won)  %d (%d)\n", s.Hedges, s.HedgeWins)
	fmt.Printf("  quarantines   %d\n", s.Quarantines)
	fmt.Printf("  probes        %d\n", s.Probes)
	fmt.Printf("  drained       %d\n", s.Drained)
	fmt.Printf("\nhistorical store holds %d tuned entries; pending writes: %d\n",
		st.Len(), srv.PendingWrites())

	ladderDemo(w)
}

// ladderDemo is phase two: the autoscaler's graceful-degradation
// ladder riding out a mass device failure. The whole pool is
// quarantined on the first submission; the controller scales out warm
// replicas, steps the ladder down to critical-only while capacity is
// gone, and — as recovery probes and warmed-up replicas restore the
// pool — releases every rung and retires the extra replicas again.
// Each submission is awaited before the next one, so every control
// decision is stamped on the simulated clock and the decision digest
// is identical on every run.
func ladderDemo(w *workload.Workload) {
	inj, err := fault.NewInjector(fault.Config{MassDeviceFail: 1}, 7, nil)
	if err != nil {
		log.Fatal(err)
	}
	dev := device.I7()
	space, err := w.InferenceSpace(dev)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := core.NewInferenceServer(core.InferenceServerOptions{
		Device:  dev,
		Space:   space,
		Metric:  core.MetricRuntime,
		Trials:  6,
		Workers: 1,
		Store:   store.New(),
		Seed:    7,
		Fault:   inj,
		Autoscale: &autoscale.Config{
			Min:              1,
			Max:              3,
			Window:           8,
			HysteresisTicks:  2,
			LadderAfterTicks: 2,
			WarmupTime:       300 * time.Second,
			WarmupEnergyJ:    50,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	fmt.Printf("\n--- degradation ladder: mass device failure at t=0 ---\n")
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		out := srv.Submit(ctx, core.InferRequest{
			Signature:      fmt.Sprintf("IC/layers=%d", 18+i),
			FLOPsPerSample: 5.6e8,
			Params:         11e6,
			Client:         "ladder-demo",
			SubmitTime:     time.Duration(i) * 10 * time.Second,
		})
		<-out // sequential awaited submissions keep the tick order exact
	}

	for _, d := range srv.AutoscaleDecisions() {
		fmt.Printf("  t=%-5v tick %-2d %-24s replicas=%d mode=%s\n",
			d.At, d.Tick, d.Reason, d.Replicas, d.Mode)
	}
	rep := srv.AutoscaleReport()
	if rep.DeepestMode == autoscale.ModeCriticalOnly {
		fmt.Printf("ladder engaged: degraded to %s while the pool was down\n", rep.DeepestMode)
	}
	if rep.FinalMode == autoscale.ModeNormal && rep.FinalReplicas == 1 {
		fmt.Printf("ladder released: back to %s with %d replica after recovery\n",
			rep.FinalMode, rep.FinalReplicas)
	}
	fmt.Printf("warm-up billed: %v and %.0f J for %d scale-ups\n",
		rep.WarmupTime, rep.WarmupEnergyJ, rep.ScaleUps)
	fmt.Printf("autoscale digest: %016x\n", rep.Digest)
}
