package edgetune

import (
	"context"
	"errors"
	"testing"

	"edgetune/internal/testutil"
)

func clusterJob(tenant string) Job {
	j := quickJob()
	j.Tenant = tenant
	return j
}

func TestClusterTuneMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster convergence is slow")
	}
	defer testutil.CheckGoroutineLeak(t, 4)

	clean, err := Tune(context.Background(), clusterJob("acme"))
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCluster(ClusterOptions{
		Shards:              2,
		Dir:                 t.TempDir(),
		Seed:                11,
		KillShardAfterRungs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := c.Tune(context.Background(), clusterJob("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FailedOver {
		t.Error("expected the scripted shard kill to force a failover")
	}
	if rep.Shard == "" {
		t.Error("report lacks its shard")
	}
	if got, want := reportDigest(rep.Report), reportDigest(clean); got != want {
		t.Errorf("failed-over cluster digest %s != single-node digest %s", got, want)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var failovers int64 = -1
	for _, ctr := range c.Metrics().Counters {
		if ctr.Name == "cluster.failovers" {
			failovers = ctr.Value
		}
	}
	if failovers != 1 {
		t.Errorf("cluster.failovers = %d, want 1", failovers)
	}
}

func TestClusterRejectsStoreJobsAndEnforcesQuota(t *testing.T) {
	defer testutil.CheckGoroutineLeak(t, 4)

	c, err := NewCluster(ClusterOptions{
		Shards:      2,
		Dir:         t.TempDir(),
		TenantRate:  0.25,
		TenantBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := clusterJob("acme")
	bad.StorePath = "somewhere/store.json"
	if _, err := c.Tune(context.Background(), bad); err == nil {
		t.Error("StorePath job accepted; want rejection")
	}

	if _, err := c.Tune(context.Background(), clusterJob("acme")); err != nil {
		t.Fatalf("first job within burst: %v", err)
	}
	_, err = c.Tune(context.Background(), clusterJob("acme"))
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("second job = %v, want ErrTenantQuota", err)
	}
	var obj *SLOObjective
	rep := c.SLO()
	for i := range rep.Objectives {
		if rep.Objectives[i].Name == "cluster/tenant-admission" {
			obj = &rep.Objectives[i]
		}
	}
	if obj == nil {
		t.Fatalf("missing cluster/tenant-admission objective: %+v", rep.Objectives)
	}
	if obj.Errors != 1 {
		t.Errorf("tenant-admission errors = %d, want 1", obj.Errors)
	}
}
