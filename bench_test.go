package edgetune_test

// This file regenerates every table and figure of the paper's
// evaluation as Go benchmarks: one benchmark per experiment, reporting
// the headline simulated metrics via b.ReportMetric so `go test
// -bench=.` produces the full reproduction. The same tables are
// printable with `go run ./cmd/benchtab`.
//
// Experiment harnesses are memoised, so iterations beyond the first are
// free and benchmark numbers reflect lookup cost; the interesting
// output is the reported custom metrics, not ns/op.

import (
	"context"
	"strconv"
	"testing"

	"edgetune/internal/budget"
	"edgetune/internal/cluster"
	"edgetune/internal/core"
	"edgetune/internal/device"
	"edgetune/internal/experiments"
	"edgetune/internal/nn"
	"edgetune/internal/obs"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/sim"
	"edgetune/internal/store"
	"edgetune/internal/tensor"
	"edgetune/internal/workload"
)

// runExperiment executes a memoised experiment once per iteration.
func runExperiment(b *testing.B, f func() (experiments.Table, error)) experiments.Table {
	b.Helper()
	var (
		tab experiments.Table
		err error
	)
	for i := 0; i < b.N; i++ {
		tab, err = f()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// metric parses a numeric cell from an experiment table for reporting.
func metric(b *testing.B, tab experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("%s[%d][%d] = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func BenchmarkFig01PerfCounters(b *testing.B) {
	tab := runExperiment(b, experiments.Fig01PerfCounters)
	b.ReportMetric(float64(len(tab.Rows)), "events")
}

func BenchmarkFig02ModelHyper(b *testing.B) {
	tab := runExperiment(b, experiments.Fig02ModelHyper)
	b.ReportMetric(metric(b, tab, 0, 1), "train-min/18-layers")
	b.ReportMetric(metric(b, tab, 2, 1), "train-min/50-layers")
	b.ReportMetric(metric(b, tab, 0, 3), "imgs-per-sec/18-layers")
}

func BenchmarkFig03TrainingHyper(b *testing.B) {
	tab := runExperiment(b, experiments.Fig03TrainingHyper)
	b.ReportMetric(metric(b, tab, 2, 2), "train-min/batch1024")
	b.ReportMetric(metric(b, tab, 4, 2), "imgs-per-sec/batch10")
}

func BenchmarkFig04TrainSystem(b *testing.B) {
	tab := runExperiment(b, experiments.Fig04TrainSystem)
	slow := metric(b, tab, 2, 2) / metric(b, tab, 0, 2)
	b.ReportMetric(slow, "batch32-8gpu-slowdown")
}

func BenchmarkFig05InferSystem(b *testing.B) {
	tab := runExperiment(b, experiments.Fig05InferSystem)
	gain := metric(b, tab, 5, 2) / metric(b, tab, 4, 2)
	b.ReportMetric(gain, "batch10-4v2core-gain")
}

func BenchmarkFig06Pipelining(b *testing.B) {
	tab := runExperiment(b, experiments.Fig06Pipelining)
	b.ReportMetric(float64(len(tab.Rows)), "trials")
}

func BenchmarkFig08Batching(b *testing.B) {
	tab := runExperiment(b, experiments.Fig08Batching)
	b.ReportMetric(metric(b, tab, 0, 2), "server-split")
	b.ReportMetric(metric(b, tab, 1, 2), "stream-cap")
}

func BenchmarkFig09HierVsOnefold(b *testing.B) {
	tab := runExperiment(b, experiments.Fig09HierVsOnefold)
	b.ReportMetric(metric(b, tab, 0, 2), "onefold-min")
	b.ReportMetric(metric(b, tab, 1, 2), "hierarchical-min")
}

func BenchmarkFig10SearchAlgos(b *testing.B) {
	tab := runExperiment(b, experiments.Fig10SearchAlgos)
	b.ReportMetric(metric(b, tab, 2, 2), "bohb-tail-objective")
	b.ReportMetric(metric(b, tab, 1, 2), "random-tail-objective")
}

func BenchmarkFig11BudgetFlow(b *testing.B) {
	tab := runExperiment(b, experiments.Fig11BudgetFlow)
	b.ReportMetric(float64(len(tab.Rows)), "iterations")
}

func BenchmarkFig12Convergence(b *testing.B) {
	tab := runExperiment(b, experiments.Fig12Convergence)
	b.ReportMetric(float64(len(tab.Rows)), "sampled-trials")
}

func BenchmarkFig13BudgetAll(b *testing.B) {
	runExperiment(b, experiments.Fig13BudgetAll)
	agg, err := experiments.Fig13Aggregates()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(agg.DurationM["OD"][budget.KindEpochs]/agg.DurationM["OD"][budget.KindMulti], "od-epochs-vs-multi")
}

func BenchmarkFig14VsTune(b *testing.B) {
	tab := runExperiment(b, experiments.Fig14VsTune)
	b.ReportMetric(metric(b, tab, 0, 3), "ic-duration-diff-pct")
	b.ReportMetric(metric(b, tab, 0, 6), "ic-energy-diff-pct")
}

func BenchmarkFig15EstimationError(b *testing.B) {
	tab := runExperiment(b, experiments.Fig15EstimationError)
	b.ReportMetric(metric(b, tab, 0, 3), "throughput-median-pe")
	b.ReportMetric(metric(b, tab, 1, 3), "energy-median-pe")
}

func BenchmarkFig16Objectives(b *testing.B) {
	tab := runExperiment(b, experiments.Fig16Objectives)
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

func BenchmarkFig17VsHyperPower(b *testing.B) {
	tab := runExperiment(b, experiments.Fig17VsHyperPower)
	b.ReportMetric(metric(b, tab, 0, 2), "edgetune-ic-min")
	b.ReportMetric(metric(b, tab, 1, 2), "hyperpower-ic-min")
}

func BenchmarkTable1Workloads(b *testing.B) {
	tab := runExperiment(b, experiments.Table1Workloads)
	b.ReportMetric(float64(len(tab.Rows)), "workloads")
}

func BenchmarkTable2Features(b *testing.B) {
	tab := runExperiment(b, experiments.Table2Features)
	b.ReportMetric(float64(len(tab.Rows)), "systems")
}

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkTrainingStep(b *testing.B) {
	rng := sim.NewRNG(1)
	w := workload.MustNew("IC", 1)
	net, err := w.BuildModel(search.Config{workload.ParamLayers: 18}, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(32, 24, 1, rng)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	opt, err := nn.NewSGD(0.01, 0.9, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, grad, err := nn.SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			b.Fatal(err)
		}
		net.Backward(grad)
		opt.Step(net.Params())
	}
}

func BenchmarkInferenceEstimate(b *testing.B) {
	prof := perfmodel.CPUProfile{
		Name: "bench", MaxCores: 4, FlopsPerCorePerGHz: 4e9,
		MinFreqGHz: 1, MaxFreqGHz: 3.5, MemBytesPerSec: 1.2e10,
		BytesPerFLOP: 0.42, BatchSetupSec: 0.005,
		MemBatchKnee: 40, MemPressureFactor: 0.8,
		IdlePowerW: 2, CorePowerW: 3.5,
	}
	spec := perfmodel.InferSpec{
		FLOPsPerSample: 5.6e8, Params: 11e6,
		BatchSize: 16, Cores: 4, FreqGHz: 3.5,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perfmodel.InferenceCost(spec, prof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPESample(b *testing.B) {
	space, err := search.NewSpace(
		search.Param{Name: "x", Kind: search.Float, Min: 0, Max: 1},
		search.Param{Name: "y", Kind: search.Float, Min: 0, Max: 1},
		search.Param{Name: "z", Kind: search.Int, Min: 1, Max: 100, Log: true},
	)
	if err != nil {
		b.Fatal(err)
	}
	tpe := search.NewTPESampler(space, 1, search.TPEOptions{})
	rng := sim.NewRNG(2)
	for i := 0; i < 60; i++ {
		cfg := space.Sample(rng)
		tpe.Observe(search.Observation{Config: cfg, Score: rng.Float64(), Budget: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tpe.Sample()
	}
}

func BenchmarkStoreLookup(b *testing.B) {
	st := store.New()
	for i := 0; i < 100; i++ {
		if err := st.Put(store.Entry{
			Signature: "sig" + strconv.Itoa(i),
			Device:    "i7",
			Config:    search.Config{"infer_batch": float64(i)},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get("sig50", "i7"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitSaturated measures the shed path: with the only worker
// held by a long-running request and the intake queue full, every
// further Submit must be rejected in constant time without blocking the
// caller or leaking a goroutine per rejection.
func BenchmarkSubmitSaturated(b *testing.B) {
	w := workload.MustNew("IC", 1)
	dev := device.I7()
	space, err := w.InferenceSpace(dev)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := core.NewInferenceServer(core.InferenceServerOptions{
		Device:     dev,
		Space:      space,
		Metric:     core.MetricRuntime,
		Trials:     2_000_000,
		Workers:    1,
		QueueLimit: 4,
		Store:      store.New(),
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		srv.Submit(ctx, core.InferRequest{
			Signature:      "IC/layers=" + strconv.Itoa(18+i),
			FLOPsPerSample: 1.8e9,
			Params:         11e6,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		<-srv.Submit(ctx, core.InferRequest{
			Signature:      "IC/layers=999",
			FLOPsPerSample: 1.8e9,
			Params:         11e6,
		})
	}
}

func BenchmarkInferenceServerCacheHit(b *testing.B) {
	st := store.New()
	w := workload.MustNew("IC", 1)
	res, err := core.Tune(context.Background(), core.Options{
		Workload:       w,
		SystemParams:   true,
		InferenceAware: true,
		InitialConfigs: 2,
		Rungs:          2,
		MaxBrackets:    1,
		InferTrials:    4,
		Store:          st,
		Seed:           1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sig := w.Signature(res.BestConfig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(sig, "i7"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceEmission measures span emission — root, attributed
// child, two ends — the tracer cost every traced trial pays.
func BenchmarkTraceEmission(b *testing.B) {
	tracer := obs.NewTracer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tracer.Root(0, "bench", uint64(i)+1, 0)
		sp := root.Child("stage", 0, obs.Int("i", int64(i)))
		sp.End(1)
		root.End(1)
	}
}

// BenchmarkWALAppend measures one durable-store put on a real WAL
// file: encode, checksum, append.
func BenchmarkWALAppend(b *testing.B) {
	dur, err := store.OpenDurable(store.DurableOptions{
		SnapshotPath:  b.TempDir() + "/store.json",
		SnapshotEvery: 1 << 30, // no compaction mid-benchmark
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dur.Close()
	st := dur.Store()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Put(store.Entry{
			Signature: "wal" + strconv.Itoa(i),
			Device:    "i7",
			Config:    search.Config{"infer_batch": 16},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterDispatch measures the consistent-hash owner lookup
// every cluster submission starts with.
func BenchmarkClusterDispatch(b *testing.B) {
	ring := cluster.NewRing(64)
	for i := 0; i < 4; i++ {
		ring.Add("shard" + strconv.Itoa(i))
	}
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = "tenant-" + strconv.Itoa(i%17) + "/job-" + strconv.Itoa(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring.Owner(keys[i%len(keys)]) == "" {
			b.Fatal("no owner")
		}
	}
}
