package edgetune

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"edgetune/internal/store"
)

func quickJob() Job {
	return Job{
		Workload:        "IC",
		Configs:         3,
		Rungs:           3,
		Brackets:        1,
		InferenceTrials: 8,
		Seed:            7,
	}
}

func TestWorkloadsAndDevices(t *testing.T) {
	ws := Workloads()
	if len(ws) != 4 {
		t.Fatalf("Workloads() = %v, want 4 entries", ws)
	}
	ds := Devices()
	if len(ds) != 3 {
		t.Fatalf("Devices() = %v, want 3 entries", ds)
	}
}

func TestTuneQuickJob(t *testing.T) {
	rep, err := Tune(context.Background(), quickJob())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "IC" || rep.Device != "i7" {
		t.Errorf("report identity = %s/%s", rep.Workload, rep.Device)
	}
	if rep.TrialsRun == 0 || rep.TuningMinutes <= 0 || rep.TuningEnergyKJ <= 0 {
		t.Errorf("implausible accounting: %+v", rep)
	}
	rec := rep.Recommendation
	if rec.BatchSize < 1 || rec.Cores < 1 || rec.FrequencyGHz <= 0 {
		t.Errorf("missing inference recommendation: %+v", rec)
	}
	if rec.Throughput <= 0 || rec.EnergyPerSampleJ <= 0 {
		t.Errorf("recommendation lacks predicted metrics: %+v", rec)
	}
	if len(rep.BestConfig) == 0 {
		t.Error("empty best config")
	}
}

func TestTuneValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Tune(ctx, Job{}); err == nil {
		t.Error("missing workload accepted")
	}
	if _, err := Tune(ctx, Job{Workload: "XX"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Tune(ctx, Job{Workload: "IC", Device: "tpu"}); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := Tune(ctx, Job{Workload: "IC", Metric: "latency"}); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, err := Tune(ctx, Job{Workload: "IC", Budget: "time"}); err == nil {
		t.Error("unknown budget accepted")
	}
}

func TestTuneWithoutInference(t *testing.T) {
	job := quickJob()
	job.WithoutInference = true
	rep, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recommendation.BatchSize != 0 {
		t.Error("inference-unaware job produced a recommendation")
	}
}

func TestTuneHierarchicalMode(t *testing.T) {
	job := quickJob()
	job.Hierarchical = true
	rep, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.BestConfig["gpus"]; !ok {
		t.Error("hierarchical job did not tune GPUs")
	}
}

func TestTunePersistentStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.json")
	job := quickJob()
	job.StorePath = path

	first, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// The second run must reuse the persisted inference results: every
	// architecture lookup is a hit.
	if second.CacheMisses != 0 {
		t.Errorf("second run had %d cache misses, want 0 (store persisted)", second.CacheMisses)
	}
	if second.CacheHits <= first.CacheHits-first.CacheMisses {
		t.Errorf("second run cache hits %d did not grow", second.CacheHits)
	}
}

func TestTuneDifferentDevicesDifferentRecommendations(t *testing.T) {
	ctx := context.Background()
	recs := make(map[string]InferenceRecommendation)
	for _, dev := range Devices() {
		job := quickJob()
		job.Device = dev
		rep, err := Tune(ctx, job)
		if err != nil {
			t.Fatalf("%s: %v", dev, err)
		}
		if rep.Recommendation.Device != dev {
			t.Errorf("recommendation device = %q, want %q", rep.Recommendation.Device, dev)
		}
		recs[dev] = rep.Recommendation
	}
	if recs["i7"].Throughput <= recs["rpi3b+"].Throughput {
		t.Error("i7 recommendation should out-run the Pi")
	}
}

func chaosJob() Job {
	job := quickJob()
	job.Brackets = 2
	job.Faults = FaultConfig{
		TrialCrash:   0.15,
		Straggler:    0.2,
		DeviceFlap:   0.1,
		DroppedReply: 0.2,
	}
	return job
}

// TestTuneFaultyJobDeterministicReplay: fault injection derives from
// the job seed, so two identical faulty jobs must produce byte-for-byte
// identical reports.
func TestTuneFaultyJobDeterministicReplay(t *testing.T) {
	run := func() []byte {
		rep, err := Tune(context.Background(), chaosJob())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed faulty jobs produced different reports:\n%s\n%s", a, b)
	}
	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Resilience.TotalFaults == 0 {
		t.Error("chaos job recorded no faults")
	}
	if rep.Recommendation.BatchSize < 1 {
		t.Error("chaos job produced no recommendation")
	}
}

func TestTuneFaultValidation(t *testing.T) {
	job := quickJob()
	job.Faults.TrialCrash = 1.5
	if _, err := Tune(context.Background(), job); err == nil {
		t.Error("out-of-range fault probability accepted")
	}
	job = quickJob()
	job.MaxTrialAttempts = -1
	if _, err := Tune(context.Background(), job); err == nil {
		t.Error("negative attempt cap accepted")
	}
}

// TestTuneCheckpointJobCompletes: a checkpointing job with a persisted
// store finishes cleanly and leaves a durable completion marker — the
// final checkpoint — so a rerun of the identical job restores the
// outcome instead of re-tuning.
func TestTuneCheckpointJobCompletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.json")
	job := quickJob()
	job.StorePath = path
	job.Checkpoint = true
	rep, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilience.ResumedRungs != 0 {
		t.Errorf("fresh job resumed %d rungs", rep.Resilience.ResumedRungs)
	}
	st, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if keys := st.CheckpointKeys(); len(keys) != 1 {
		t.Errorf("completion checkpoint not persisted: %v", keys)
	}
	// Re-running the identical job restores the completed checkpoint:
	// same outcome, zero store misses, zero re-executed work.
	again, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheMisses != 0 {
		t.Errorf("second run missed the persisted store %d times", again.CacheMisses)
	}
	if again.Resilience.ResumedRungs == 0 {
		t.Error("second run did not restore the completed checkpoint")
	}
	if again.BestAccuracy != rep.BestAccuracy {
		t.Errorf("restored outcome diverged: %v != %v", again.BestAccuracy, rep.BestAccuracy)
	}
}

func TestPlanServer(t *testing.T) {
	plan, err := PlanServer(ServerScenario{
		Workload:        "IC",
		ModelConfig:     map[string]float64{"layers": 18},
		SamplesPerQuery: 64,
		PeriodSec:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Split < 1 || plan.Split > 64 {
		t.Errorf("split = %d out of range", plan.Split)
	}
	if !plan.Stable {
		t.Error("comfortable load reported unstable")
	}
	if _, err := PlanServer(ServerScenario{}); err == nil {
		t.Error("empty scenario accepted")
	}
}

func TestPlanMultiStream(t *testing.T) {
	plan, err := PlanMultiStream(MultiStreamScenario{
		Workload:       "IC",
		ModelConfig:    map[string]float64{"layers": 18},
		ArrivalsPerSec: 40,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.BatchCap < 1 {
		t.Errorf("batch cap = %d", plan.BatchCap)
	}
	if plan.MeanResponseSec <= 0 || plan.P95ResponseSec < plan.MeanResponseSec {
		t.Errorf("implausible response stats: %+v", plan)
	}
	if _, err := PlanMultiStream(MultiStreamScenario{}); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := PlanMultiStream(MultiStreamScenario{
		Workload:       "IC",
		ModelConfig:    map[string]float64{"layers": 18},
		ArrivalsPerSec: -1,
	}); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestReportDeterministic: two independent same-seed runs of a faulted
// job must marshal to byte-identical JSON reports — the determinism
// contract covers metrics, fault counts, and the trace-fed accounting,
// not just the recommendation.
func TestReportDeterministic(t *testing.T) {
	job := quickJob()
	job.Faults = FaultConfig{TrialCrash: 0.2, Straggler: 0.2, DroppedReply: 0.1}
	marshal := func() []byte {
		t.Helper()
		rep, err := Tune(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed reports differ:\n%s\n---\n%s", a, b)
	}
}
