package edgetune

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgetune/internal/obs/flight"
	"edgetune/internal/testutil"
)

// chaoticFlightJob is a faulty job noisy enough to fire at least one
// flight trigger organically (a serving SLO alert), mirroring the
// chaos example the CI gate drives.
func chaoticFlightJob(incidentsDir string) Job {
	return Job{
		Workload: "IC",
		Configs:  4,
		Rungs:    4,
		Brackets: 2,
		Seed:     42,
		Faults: FaultConfig{
			TrialCrash:   0.15,
			TrialNaN:     0.05,
			Straggler:    0.20,
			DeviceFlap:   0.10,
			StoreWrite:   0.10,
			DroppedReply: 0.15,
		},
		Checkpoint:   true,
		Flight:       true,
		IncidentsDir: incidentsDir,
	}
}

// TestFlightIncidentsDeterministic: two same-seed runs cut
// byte-identical incident dossiers — the artefact-level statement of
// the same-seed contract the flight-recorder CI gate enforces.
func TestFlightIncidentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos job is slow")
	}
	defer testutil.CheckGoroutineLeak(t, 4)

	runOnce := func(dir string) []Incident {
		rep, err := Tune(context.Background(), chaoticFlightJob(dir))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Incidents
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	incA := runOnce(dirA)
	incB := runOnce(dirB)

	if len(incA) == 0 {
		t.Fatal("chaotic job fired no flight triggers; the chaos gate would be vacuous")
	}
	if len(incA) != len(incB) {
		t.Fatalf("incident counts differ: %d vs %d", len(incA), len(incB))
	}
	for i := range incA {
		if incA[i].Digest != incB[i].Digest {
			t.Errorf("incident %d digests differ: %s vs %s", i, incA[i].Digest, incB[i].Digest)
		}
		a, err := os.ReadFile(incA[i].Path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(incB[i].Path)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("incident %d artefacts differ:\n%s\nvs\n%s", i, incA[i].Path, incB[i].Path)
		}
		d, err := flight.ReadDossier(incA[i].Path)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := d.Verify(); !ok {
			t.Errorf("incident %d artefact fails its own digest", i)
		}
	}
}

// TestClusterFlightFailoverDossier: a scripted shard kill emits a
// shard-failover dossier whose event window contains the kill and the
// promotion, written shard-prefixed when the cluster closes.
func TestClusterFlightFailoverDossier(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster failover is slow")
	}
	defer testutil.CheckGoroutineLeak(t, 4)

	incDir := t.TempDir()
	c, err := NewCluster(ClusterOptions{
		Shards:              2,
		Dir:                 t.TempDir(),
		Seed:                11,
		KillShardAfterRungs: 2,
		IncidentsDir:        incDir, // implies Flight
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := c.Tune(context.Background(), clusterJob("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FailedOver {
		t.Fatal("expected the scripted shard kill to force a failover")
	}

	incidents := c.Incidents()
	found := false
	for shard, incs := range incidents {
		for _, inc := range incs {
			if inc.Trigger == flight.TriggerFailover {
				found = true
				if inc.Detail != shard {
					t.Errorf("failover incident detail %q on shard %q", inc.Detail, shard)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no shard-failover incident after a failover: %+v", incidents)
	}

	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	entries, err := os.ReadDir(incDir)
	if err != nil {
		t.Fatal(err)
	}
	var failoverPath string
	for _, e := range entries {
		if strings.Contains(e.Name(), flight.TriggerFailover) {
			failoverPath = filepath.Join(incDir, e.Name())
		}
	}
	if failoverPath == "" {
		t.Fatalf("no shard-failover artefact in %v", entries)
	}
	d, err := flight.ReadDossier(failoverPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.Verify(); !ok {
		t.Error("failover dossier fails its own digest")
	}
	var kill, promoted bool
	for _, ev := range d.Events {
		if ev.Kind == flight.KindFailover {
			if ev.Time < d.Window.From || ev.Time > d.Window.To {
				t.Errorf("failover event at %v outside window [%v, %v]", ev.Time, d.Window.From, d.Window.To)
			}
			switch ev.Detail {
			case "kill":
				kill = true
			case "promoted":
				promoted = true
			}
		}
	}
	if !kill || !promoted {
		t.Errorf("dossier window lacks the failover events (kill=%v promoted=%v):\n%+v", kill, promoted, d.Events)
	}
}
