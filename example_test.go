package edgetune_test

import (
	"context"
	"fmt"
	"log"

	"edgetune"
)

// The built-in workload and device catalogues are stable.
func ExampleWorkloads() {
	fmt.Println(edgetune.Workloads())
	fmt.Println(edgetune.Devices())
	// Output:
	// [IC SR NLP OD]
	// [armv7 i7 rpi3b+]
}

// Tune runs a complete inference-aware tuning job. (Not executed as a
// doctest: results are deterministic per seed but verbose.)
func ExampleTune() {
	report, err := edgetune.Tune(context.Background(), edgetune.Job{
		Workload:     "IC",
		Device:       "rpi3b+",
		Metric:       edgetune.MetricEnergy,
		StopAtTarget: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deploy with batch %d on %d cores\n",
		report.Recommendation.BatchSize, report.Recommendation.Cores)
}

// PlanServer tunes the batch split for the fixed-frequency server
// scenario of the paper's §3.4.
func ExamplePlanServer() {
	plan, err := edgetune.PlanServer(edgetune.ServerScenario{
		Workload:        "IC",
		ModelConfig:     map[string]float64{"layers": 18},
		SamplesPerQuery: 64,
		PeriodSec:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split each 64-sample query into batches of %d\n", plan.Split)
	// Output:
	// split each 64-sample query into batches of 32
}

// Recommend produces per-device deployment advice for a tuned model.
func ExampleRecommend() {
	recs, err := edgetune.Recommend(context.Background(), edgetune.RecommendRequest{
		Workload:    "IC",
		ModelConfig: map[string]float64{"layers": 18},
		Devices:     []string{"i7", "rpi3b+"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Printf("%s: batch %d\n", r.Device, r.BatchSize)
	}
}
