package edgetune

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"edgetune/internal/obs"
)

// TestTuneOverloadSLOAlerts: a job under a sustained synthetic overload
// burst must surface the burn in Report.SLO — at least the three
// standing objectives, with the rejection objective's multi-window
// burn-rate alert firing.
func TestTuneOverloadSLOAlerts(t *testing.T) {
	job := quickJob()
	job.Faults = FaultConfig{OverloadBurst: 0.95}
	rep, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SLO.Objectives) < 3 {
		t.Fatalf("Report.SLO has %d objectives, want >= 3: %+v",
			len(rep.SLO.Objectives), rep.SLO.Objectives)
	}
	if rep.SLO.HorizonMinutes <= 0 {
		t.Errorf("SLO horizon = %v, want > 0", rep.SLO.HorizonMinutes)
	}
	names := map[string]SLOObjective{}
	for _, o := range rep.SLO.Objectives {
		names[o.Name] = o
		if len(o.Windows) < 2 {
			t.Errorf("objective %s has %d alert windows, want >= 2", o.Name, len(o.Windows))
		}
	}
	for _, want := range []string{"serving/latency", "serving/rejections", "tuning/trial-overrun"} {
		if _, ok := names[want]; !ok {
			t.Errorf("Report.SLO missing objective %q", want)
		}
	}
	rej := names["serving/rejections"]
	if rej.Events == 0 || rej.Errors == 0 {
		t.Fatalf("rejection objective saw no overload: %+v", rej)
	}
	if !rej.Alerting {
		t.Errorf("95%% overload must fire the rejection burn-rate alert: %+v", rej)
	}
	if !rep.SLO.Alerting {
		t.Error("Report.SLO.Alerting must reflect the firing objective")
	}

	// A clean same-seed job must not alert on rejections.
	clean, err := Tune(context.Background(), quickJob())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range clean.SLO.Objectives {
		if o.Name == "serving/rejections" && o.Alerting {
			t.Errorf("clean run alerting on rejections: %+v", o)
		}
	}
}

// TestAnalyzeHandler: the /analyze debug endpoint renders the live
// trace analysis in text and JSON.
func TestAnalyzeHandler(t *testing.T) {
	tr := obs.NewTracer()
	root := tr.Root(2, "request", 1, 0)
	root.Child("serve", 10).End(90)
	root.End(100)

	h := analyzeHandler(tr)
	get := func(url string) string {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s status %d", url, rec.Code)
		}
		body, _ := io.ReadAll(rec.Result().Body)
		return string(body)
	}

	text := get("/analyze")
	if !strings.Contains(text, "span classes:") || !strings.Contains(text, "request") {
		t.Errorf("/analyze text missing analysis:\n%s", text)
	}
	asJSON := get("/analyze?format=json")
	if !strings.Contains(asJSON, `"classes"`) {
		t.Errorf("/analyze?format=json missing report:\n%s", asJSON)
	}
}
