package edgetune

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"edgetune/internal/store"
)

// crashJob is the seeded job both halves of the crash/restart harness
// run: small enough to finish fast, checkpointed so a killed run
// resumes at rung granularity.
func crashJob(seed uint64, storePath string, killAfter int) Job {
	return Job{
		Workload:              "IC",
		Configs:               3,
		Rungs:                 3,
		Brackets:              2,
		InferenceTrials:       8,
		Seed:                  seed,
		Checkpoint:            true,
		StorePath:             storePath,
		StoreWAL:              true,
		StoreKillAfterAppends: killAfter,
	}
}

// reportDigest condenses the outcome a user acts on — winning
// configuration and inference recommendation — into a hash for
// convergence comparison.
func reportDigest(r *Report) string {
	h := fnv.New64a()
	keys := make([]string, 0, len(r.BestConfig))
	for k := range r.BestConfig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%.9g;", k, r.BestConfig[k])
	}
	fmt.Fprintf(h, "acc=%.9g;", r.BestAccuracy)
	rec := r.Recommendation
	fmt.Fprintf(h, "rec=%s/%d/%d/%.9g/%.9g/%.9g/%.9g", rec.Device, rec.BatchSize,
		rec.Cores, rec.FrequencyGHz, rec.Throughput, rec.EnergyPerSampleJ, rec.LatencySeconds)
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestCrashChildProcess is the re-exec target of the crash harness: it
// only runs when the parent set EDGETUNE_CRASH_STORE, tunes the seeded
// job with the kill switch armed, and — if the process survives to the
// end — prints the outcome digest for the parent to compare. A run
// that hits the kill point dies with store.KillExitCode mid-bracket,
// exactly like a power cut after an acknowledged fsync.
func TestCrashChildProcess(t *testing.T) {
	storePath := os.Getenv("EDGETUNE_CRASH_STORE")
	if storePath == "" {
		t.Skip("crash-harness child; run via TestCrashRestartRecovery")
	}
	killAfter, _ := strconv.Atoi(os.Getenv("EDGETUNE_CRASH_KILL"))
	seed, _ := strconv.ParseUint(os.Getenv("EDGETUNE_CRASH_SEED"), 10, 64)
	rep, err := Tune(context.Background(), crashJob(seed, storePath, killAfter))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("CRASH_DIGEST %s\n", reportDigest(rep))
}

// TestCrashRestartRecovery kills the tuner at seeded points
// mid-bracket (process death right after an acknowledged WAL append),
// restarts it from the on-disk store until a run survives, and asserts
// the survivor reaches the same recommendation digest as an
// uninterrupted same-seed run — the paper's "never re-tune twice"
// store, now proven against power loss, not just injected logical
// faults.
func TestCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary repeatedly")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const seed = 42

	// The ground truth: one uninterrupted run, in-process.
	baseline, err := Tune(context.Background(),
		crashJob(seed, filepath.Join(t.TempDir(), "baseline.json"), 0))
	if err != nil {
		t.Fatal(err)
	}
	want := reportDigest(baseline)

	for _, killAfter := range []int{2, 7} {
		killAfter := killAfter
		t.Run(fmt.Sprintf("kill-after-%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			storePath := filepath.Join(dir, "history.json")
			var out []byte
			restarts := 0
			for {
				cmd := exec.Command(exe, "-test.run=^TestCrashChildProcess$", "-test.v")
				cmd.Env = append(os.Environ(),
					"EDGETUNE_CRASH_STORE="+storePath,
					"EDGETUNE_CRASH_KILL="+strconv.Itoa(killAfter),
					"EDGETUNE_CRASH_SEED="+strconv.FormatUint(seed, 10),
				)
				var runErr error
				out, runErr = cmd.CombinedOutput()
				if runErr == nil {
					break
				}
				ee, ok := runErr.(*exec.ExitError)
				if !ok || ee.ExitCode() != store.KillExitCode {
					t.Fatalf("child died unexpectedly: %v\n%s", runErr, out)
				}
				restarts++
				if restarts > 100 {
					t.Fatalf("no convergence after %d kill/restart cycles", restarts)
				}
			}
			if restarts == 0 {
				t.Fatalf("kill switch at %d appends never fired — the harness proved nothing", killAfter)
			}
			var got string
			for _, line := range strings.Split(string(out), "\n") {
				if rest, ok := strings.CutPrefix(line, "CRASH_DIGEST "); ok {
					got = strings.TrimSpace(rest)
				}
			}
			if got == "" {
				t.Fatalf("surviving child printed no digest:\n%s", out)
			}
			if got != want {
				t.Errorf("after %d crashes the digest is %s, want %s (uninterrupted)", restarts, got, want)
			}

			// The recovered store must also pass an integrity scrub.
			rep, err := store.Scrub(nil, storePath, "")
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean {
				t.Errorf("store not clean after recovery: %+v", rep)
			}
			t.Logf("converged after %d kill/restart cycles", restarts)
		})
	}
}
