// Package edgetune is an inference-aware multi-parameter tuning server
// for deep-learning workloads, reproducing the system of Rocha, Felber,
// Schiavoni and Chen, "EdgeTune: Inference-Aware Multi-Parameter
// Tuning" (ACM/IFIP Middleware 2022).
//
// EdgeTune tunes model hyperparameters, training hyperparameters, and
// system parameters jointly (the onefold approach), while a dedicated
// Inference Tuning Server asynchronously explores inference batch size
// and edge-device system parameters so that the tuning objective can
// balance model accuracy against deployed inference performance. Trials
// run under the novel multi-budget strategy, which grows the number of
// epochs and the dataset fraction simultaneously.
//
// A minimal run:
//
//	report, err := edgetune.Tune(ctx, edgetune.Job{Workload: "IC"})
//	if err != nil { ... }
//	fmt.Println(report.Recommendation.BatchSize, report.Recommendation.Cores)
//
// The package also exposes the batching scenarios of the paper's §3.4
// (fixed-frequency servers and Poisson multi-streams) for tuning the
// inference batch size of an already-trained model.
package edgetune

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/core"
	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/analyze"
	"edgetune/internal/obs/flight"
	"edgetune/internal/obs/slo"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

// Metric selects the optimisation objective.
type Metric string

// Objective metrics (§4.4 of the paper).
const (
	// MetricRuntime minimises (training time × inference latency) / accuracy.
	MetricRuntime Metric = "runtime"
	// MetricEnergy minimises (training energy × inference energy) / accuracy.
	MetricEnergy Metric = "energy"
)

// BudgetKind selects the trial budget strategy (§4.3).
type BudgetKind string

// Budget strategies.
const (
	// BudgetEpochs grows only the epoch count (classic multi-fidelity).
	BudgetEpochs BudgetKind = "epochs"
	// BudgetDataset grows only the dataset fraction at one epoch.
	BudgetDataset BudgetKind = "dataset"
	// BudgetMulti grows both dimensions simultaneously (Algorithm 2,
	// the paper's contribution and the default).
	BudgetMulti BudgetKind = "multi"
)

// Algorithm names a search strategy.
type Algorithm string

// Search algorithms (§4.2).
const (
	AlgorithmBOHB   Algorithm = "bohb"
	AlgorithmRandom Algorithm = "random"
	AlgorithmGrid   Algorithm = "grid"
)

// Workloads returns the built-in workload identifiers (Table 1):
// IC (image classification), SR (speech recognition), NLP (natural
// language processing), and OD (object detection).
func Workloads() []string { return workload.IDs() }

// Devices returns the built-in edge-device names (§2.1's testbed):
// armv7, i7, and rpi3b+.
func Devices() []string {
	devs := device.All()
	names := make([]string, len(devs))
	for i, d := range devs {
		names[i] = d.Profile.Name
	}
	return names
}

// Job describes one tuning job: the paper's EdgeTune inputs (§3.1).
type Job struct {
	// Workload is the model/dataset pair to tune: IC, SR, NLP, or OD.
	// Required.
	Workload string
	// Device is the edge inference target (default "i7").
	Device string
	// CustomDevice tunes for a user-described device instead of a
	// built-in one; it takes precedence over Device.
	CustomDevice *DeviceProfile
	// Budget is the trial budget strategy (default BudgetMulti).
	Budget BudgetKind
	// Metric is the objective variant (default MetricRuntime).
	Metric Metric
	// ModelAlgorithm and InferenceAlgorithm select the search strategy
	// of each server independently (§3.1); both default to BOHB.
	ModelAlgorithm     Algorithm
	InferenceAlgorithm Algorithm
	// Hierarchical switches to the two-tier baseline of §4.1 instead of
	// the onefold default.
	Hierarchical bool
	// WithoutInference disables the Inference Tuning Server, producing
	// a classic accuracy-only tuner (for comparisons).
	WithoutInference bool
	// StopAtTarget ends tuning once a trial reaches the workload's
	// target accuracy (bracket granularity).
	StopAtTarget bool
	// Configs, Rungs, and Brackets size the successive-halving search
	// (defaults 8, 6, 3).
	Configs  int
	Rungs    int
	Brackets int
	// InferenceTrials is the number of inference configurations
	// explored per architecture (default 24).
	InferenceTrials int
	// StorePath optionally persists the historical inference-tuning
	// database across jobs (§3.4).
	StorePath string
	// StoreWAL layers the crash-consistent durability subsystem over
	// StorePath: every store mutation is appended to a per-record
	// checksummed write-ahead log (StorePath + ".wal") and fsynced
	// before it is acknowledged, the log is periodically compacted into
	// the snapshot, and opening the job recovers whatever a previous
	// crash left behind — torn tails truncated, corrupt records
	// quarantined, the salvage reported in Report.StoreRecovery.
	// Requires StorePath.
	StoreWAL bool
	// StoreSnapshotEvery compacts the WAL into a fresh snapshot once
	// this many records accumulate (default 256; negative disables
	// periodic compaction). Only meaningful with StoreWAL.
	StoreSnapshotEvery int
	// StoreKillAfterAppends, when positive, terminates the whole
	// process (exit code store.KillExitCode) immediately after the Nth
	// durably acknowledged WAL append — the chaos hook the
	// crash/restart harness uses to prove recovery. Only meaningful
	// with StoreWAL.
	StoreKillAfterAppends int
	// Autoscale enables the inference server's SLO-driven device-pool
	// autoscaler and graceful-degradation ladder: simulated replicas of
	// the target device are added under saturation or capacity loss
	// (each charging a warm-up cost to the tuning budget), retired again
	// with hysteresis when load recedes, and when scaling out is not
	// enough the server sheds background work, disables hedging, and
	// finally serves critical requests only — stepping back out as the
	// burn rate recovers. The run's control-loop summary lands in
	// Report.Autoscale.
	Autoscale bool
	// AutoscaleMin and AutoscaleMax bound the replica count (defaults 1
	// and 4). Only meaningful with Autoscale.
	AutoscaleMin int
	AutoscaleMax int
	// Seed drives all randomised components; jobs are fully
	// deterministic given a seed.
	Seed uint64
	// Tenant names the client submitting this job. It keys the serving
	// layer's per-client admission (and the cluster dispatcher's quota
	// gate), so per-tenant rejection counters and the tenant-rejections
	// SLO attribute pressure to the right client. Empty means
	// per-signature clients, the single-tenant default.
	Tenant string
	// Faults injects deterministic failures into the trial and
	// inference paths for resilience testing; the zero value injects
	// nothing. Fault decisions derive from the job seed, so a faulty
	// job replays exactly.
	Faults FaultConfig
	// MaxTrialAttempts caps retries per training trial under injected
	// faults (default 3).
	MaxTrialAttempts int
	// Checkpoint records completed successive-halving rungs in the
	// historical store (and, with StorePath set, on disk) so an
	// interrupted job resumes without re-running finished trials.
	Checkpoint bool
	// TracePath, when set, writes the job's deterministic span trace as
	// JSON Lines (one span per line, sorted by start time). Same-seed
	// jobs produce byte-identical files.
	TracePath string
	// TraceChromePath, when set, writes the same trace in Chrome
	// trace-event format, loadable in Perfetto or chrome://tracing.
	TraceChromePath string
	// DebugAddr, when set (e.g. "127.0.0.1:6060"), serves /metrics,
	// /metrics.json, /metrics/prom, /healthz, /slo, /analyze,
	// /debug/goroutines, /debug/vars, and /debug/pprof for the duration
	// of the job. /analyze renders a live trace analysis, so setting
	// DebugAddr enables tracing even without TracePath.
	DebugAddr string
	// Profile turns on the profiling plane: pprof labels (tenant,
	// bracket/rung, fault class, serving priority — plus shard under a
	// cluster) attribute CPU/heap profiles captured from DebugAddr's
	// pprof endpoints, and per-stage allocation probes land in
	// Report.Profile and on the metrics surfaces as
	// prof.allocs-per-op.<stage> / prof.bytes-per-op.<stage> gauges.
	// Measured alloc values can wobble a few allocs across runs, so
	// digest-compared deterministic runs leave this off.
	Profile bool
	// Flight turns on the always-on flight recorder: a preallocated
	// fixed-slot ring continuously records a compact event stream from
	// both pipelines (span completions, SLO alert edges, autoscale and
	// ladder decisions, admission rejections, breaker and health
	// transitions, WAL appends and recovery) with zero steady-state
	// allocations, and anomaly triggers — an SLO alert's rising edge,
	// ladder engagement, a crash-recovery salvage, a mass device
	// failure — snapshot it into deterministic incident dossiers,
	// summarised in Report.Incidents. Enabling Flight also enables
	// tracing so dossiers carry a windowed trace analysis. Same-seed
	// runs produce byte-identical dossiers (leave Profile off for
	// digest-compared runs).
	Flight bool
	// FlightSlots sizes the recorder's ring (default 65536 slots).
	FlightSlots int
	// IncidentsDir, when set (implies Flight), writes each incident
	// dossier as a self-contained JSON artefact into this directory,
	// named incident-<seq>-<trigger>.json; tracetool incident show/diff
	// reads them back.
	IncidentsDir string
}

// FaultConfig sets per-site injection probabilities for the supported
// failure classes (all in [0,1]; zero disables a class).
type FaultConfig struct {
	// TrialCrash kills a training trial partway through.
	TrialCrash float64
	// TrialNaN makes a trial diverge after consuming its full budget.
	TrialNaN float64
	// Straggler inflates a trial's cost by up to StragglerFactor.
	Straggler float64
	// StragglerFactor is the maximum slowdown multiplier (default 4).
	StragglerFactor float64
	// DeviceFlap makes the emulated edge device drop an inference
	// tuning attempt.
	DeviceFlap float64
	// DeviceBrownout slows an inference tuning attempt by up to
	// BrownoutFactor without failing it — the thermally-throttled
	// straggler the inference server hedges against.
	DeviceBrownout float64
	// BrownoutFactor is the maximum brown-out slowdown (default 6).
	BrownoutFactor float64
	// OverloadBurst sheds an inference submission at the admission
	// gate, emulating a synthetic traffic spike.
	OverloadBurst float64
	// StoreWrite fails a write to the historical store.
	StoreWrite float64
	// DroppedReply loses an inference server reply in flight.
	DroppedReply float64
	// The disk classes fire per filesystem operation of the durable
	// store (StoreWAL), emulating flaky edge flash: DiskTornWrite cuts
	// a write short, DiskCrash writes half a record and kills the disk,
	// DiskBitFlip silently corrupts one written byte, DiskFull fails a
	// write with ENOSPC, DiskSlowFsync stalls (but completes) an fsync.
	DiskTornWrite float64
	DiskCrash     float64
	DiskBitFlip   float64
	DiskFull      float64
	DiskSlowFsync float64
	// The cluster classes fire on a sharded deployment (NewCluster):
	// ShardKill crashes a job's shard primary at a rung boundary while
	// its follower still stands, NetPartition drops a WAL frame on the
	// primary→follower replication link, FollowerLag delays frames in
	// flight (they land in order at the next ship or at failover
	// catch-up). They are inert in a single-node Tune.
	ShardKill    float64
	NetPartition float64
	FollowerLag  float64
	// The autoscale classes exercise the SLO-driven device-pool
	// autoscaler (Job.Autoscale): FlashCrowd injects a phantom arrival
	// surge that inflates the in-system load signal until it decays,
	// MassDeviceFail quarantines the entire device pool at once (at most
	// once per job), ScaleStall swallows a scale-up so the warm-up cost
	// is charged but the replica never joins. They are inert without
	// Autoscale.
	FlashCrowd     float64
	MassDeviceFail float64
	ScaleStall     float64
}

// anyDisk reports whether any disk-fault class is enabled.
func (f FaultConfig) anyDisk() bool {
	return f.DiskTornWrite > 0 || f.DiskCrash > 0 || f.DiskBitFlip > 0 ||
		f.DiskFull > 0 || f.DiskSlowFsync > 0
}

func (f FaultConfig) toInternal() fault.Config {
	return fault.Config{
		TrialCrash:      f.TrialCrash,
		TrialNaN:        f.TrialNaN,
		Straggler:       f.Straggler,
		StragglerFactor: f.StragglerFactor,
		DeviceFlap:      f.DeviceFlap,
		DeviceBrownout:  f.DeviceBrownout,
		BrownoutFactor:  f.BrownoutFactor,
		OverloadBurst:   f.OverloadBurst,
		StoreWrite:      f.StoreWrite,
		DroppedReply:    f.DroppedReply,
		DiskTornWrite:   f.DiskTornWrite,
		DiskCrash:       f.DiskCrash,
		DiskBitFlip:     f.DiskBitFlip,
		DiskFull:        f.DiskFull,
		DiskSlowFsync:   f.DiskSlowFsync,
		ShardKill:       f.ShardKill,
		NetPartition:    f.NetPartition,
		FollowerLag:     f.FollowerLag,
		FlashCrowd:      f.FlashCrowd,
		MassDeviceFail:  f.MassDeviceFail,
		ScaleStall:      f.ScaleStall,
	}
}

// FaultCount reports how often one injected fault class fired.
type FaultCount struct {
	Class string
	Count int64
}

// ResilienceReport aggregates a job's fault-tolerance accounting.
type ResilienceReport struct {
	// TotalFaults counts every injected fault, with Faults breaking the
	// total down by class.
	TotalFaults int64
	Faults      []FaultCount
	// Retries counts re-run training trials and re-submitted inference
	// requests.
	Retries int64
	// Breaker transition counts for the inference server's per-device
	// circuit breaker.
	BreakerOpens     int64
	BreakerHalfOpens int64
	BreakerCloses    int64
	// Degraded counts outcomes served from fallbacks (historical store
	// or performance-model estimate) instead of live inference tuning.
	Degraded int64
	// ResumedRungs counts successive-halving rungs restored from a
	// checkpoint instead of re-run.
	ResumedRungs int64
	// Shed and RateLimited count inference submissions rejected by the
	// server's admission control (queue overflow or injected overload
	// bursts, and per-client token-bucket rejections); Preempted counts
	// queued background requests evicted for critical ones.
	Shed        int64
	RateLimited int64
	Preempted   int64
	// Hedges counts speculative re-issues to a second pool device when
	// the primary straggled past its perfmodel-derived deadline;
	// HedgeWins counts hedges whose result arrived first.
	Hedges    int64
	HedgeWins int64
	// Quarantines counts devices pulled from routing on collapsed
	// health scores; Probes counts the recovery requests routed to
	// quarantined devices.
	Quarantines int64
	Probes      int64
	// Drained counts requests completed during a graceful shutdown.
	Drained int64
}

// InferenceRecommendation is the deployment configuration EdgeTune
// outputs alongside the tuned model (§3.1).
type InferenceRecommendation struct {
	// Device is the edge device the recommendation targets.
	Device string
	// BatchSize is the optimal inference batch size.
	BatchSize int
	// Cores is the optimal CPU core count.
	Cores int
	// FrequencyGHz is the optimal CPU frequency.
	FrequencyGHz float64
	// Throughput is the predicted samples/second at this configuration.
	Throughput float64
	// EnergyPerSampleJ is the predicted joules per sample.
	EnergyPerSampleJ float64
	// LatencySeconds is the predicted per-batch latency.
	LatencySeconds float64
}

// Report is a completed tuning job's outcome.
type Report struct {
	// Workload and Device echo the job.
	Workload string
	Device   string
	// Metric echoes the objective used.
	Metric Metric
	// BestConfig is the winning joint configuration (model
	// hyperparameter, training batch size, and GPU count).
	BestConfig map[string]float64
	// BestAccuracy is the winning trial's accuracy; MaxAccuracy is the
	// highest accuracy any trial reached.
	BestAccuracy float64
	MaxAccuracy  float64
	// ReachedTarget reports whether any trial met the workload's target
	// accuracy.
	ReachedTarget bool
	// TuningMinutes and TuningEnergyKJ account the tuning phase in the
	// paper's units (simulated).
	TuningMinutes  float64
	TuningEnergyKJ float64
	// TrialsRun counts training trials.
	TrialsRun int
	// CacheHits and CacheMisses report historical-store reuse.
	CacheHits   int
	CacheMisses int
	// Recommendation is the inference deployment advice (zero when
	// WithoutInference was set).
	Recommendation InferenceRecommendation
	// RecommendationDegraded marks a recommendation that came from a
	// fallback because live inference tuning was unavailable.
	RecommendationDegraded bool
	// Resilience reports fault injection and recovery accounting.
	Resilience ResilienceReport
	// Metrics is the job's full metrics snapshot: every counter, gauge,
	// and histogram the pipeline registered, sorted by name. The
	// resilience counters above read the same cells; Metrics adds the
	// tuner and serving instruments (trial duration/energy histograms,
	// per-device breakdowns, store writes).
	Metrics MetricsReport
	// SLO evaluates the job's service-level objectives (serving latency,
	// overload rejections, trial budget overruns) with multi-window
	// burn-rate alerts over the simulated clock.
	SLO SLOReport
	// StoreRecovery describes what opening the durable store salvaged
	// from a previous crash (nil without StoreWAL).
	StoreRecovery *StoreRecovery
	// Autoscale summarises the device-pool autoscaler's control loop
	// (nil unless Job.Autoscale was set).
	Autoscale *AutoscaleReport
	// Profile is the per-stage allocation probes (nil unless
	// Job.Profile was set). The same values appear in Metrics as
	// prof.allocs-per-op.<stage> / prof.bytes-per-op.<stage> gauges.
	Profile []ProfileProbe
	// Incidents summarises the dossiers the flight recorder cut (nil
	// unless Job.Flight was set and a trigger fired). The full
	// artefacts are the JSON files at each Incident.Path when
	// Job.IncidentsDir was set.
	Incidents []Incident
}

// Incident summarises one incident dossier cut by the flight recorder
// (Job.Flight): which trigger fired, where on the simulated clock, and
// how much of the event window the dossier holds. The self-contained
// artefact — trigger, window timeline, metrics and SLO snapshots,
// windowed trace analysis, digest — is the JSON file at Path when the
// job set IncidentsDir.
type Incident struct {
	// Trigger is the trigger kind: "slo-alert", "ladder-engaged",
	// "shard-failover", "crash-salvage", "mass-device-fail", or
	// "manual".
	Trigger string
	// Detail is the trigger's context: the alerting objective, the
	// failed-over shard, the engaged ladder mode.
	Detail string
	// AtMinutes is the trigger's simulated time.
	AtMinutes float64
	// Seq orders the run's triggers from zero.
	Seq int
	// Events counts the timeline events inside the dossier's window.
	Events int
	// Truncated marks a window whose left edge the ring had already
	// overwritten.
	Truncated bool
	// Digest is the artefact's FNV-1a content digest.
	Digest string
	// Path is the written JSON artefact (empty without IncidentsDir).
	Path string
}

// ProfileProbe is one hot-loop stage's allocation measurement: the
// average heap allocations and bytes one operation of the stage costs,
// over Runs probe runs on self-contained throwaway state.
type ProfileProbe struct {
	Stage       string
	Runs        int
	AllocsPerOp float64
	BytesPerOp  float64
}

// AutoscaleReport summarises the autoscaler's run: how often it
// scaled, how deep the graceful-degradation ladder went, the warm-up
// bill, and the deterministic digest of the decision stream. Stalled
// scale-ups (the ScaleStall fault class) appear in the
// "autoscale.stalls" counter of Report.Metrics.
type AutoscaleReport struct {
	// Ticks counts control-loop evaluations (one per inference
	// submission); Decisions counts the actions emitted.
	Ticks     int64
	Decisions int
	// ScaleUps and ScaleDowns count replica additions and retirements.
	ScaleUps   int
	ScaleDowns int
	// DegradeSteps and RecoverSteps count degradation-ladder
	// transitions. Modes are "normal", "shed-background", "no-hedging",
	// and "critical-only".
	DegradeSteps int
	RecoverSteps int
	DeepestMode  string
	FinalMode    string
	// FinalReplicas is the active replica count at the last tick.
	FinalReplicas int
	// WarmupMinutes and WarmupEnergyKJ are the total replica warm-up
	// costs, already included in TuningMinutes and TuningEnergyKJ.
	WarmupMinutes  float64
	WarmupEnergyKJ float64
	// Digest is the FNV-1a fold of the decision stream, hex-encoded;
	// same-seed jobs produce identical digests.
	Digest string
}

// StoreRecovery reports a durable store's crash-recovery salvage: how
// the state was reconstructed and what could not be kept.
type StoreRecovery struct {
	// SnapshotSource is which snapshot generation seeded the state:
	// "snapshot", "previous" (the compaction fallback), or "none".
	SnapshotSource string
	// SnapshotQuarantined marks a corrupt snapshot moved aside to
	// .quarantine rather than deleted.
	SnapshotQuarantined bool
	// RecordsReplayed counts WAL records applied over the snapshot;
	// RecordsQuarantined counts corrupt records preserved in the
	// .quarantine sidecar; TruncatedBytes is the torn tail cut off.
	RecordsReplayed    int
	RecordsQuarantined int
	TruncatedBytes     int64
	// Entries and Checkpoints are the recovered logical state.
	Entries     int
	Checkpoints int
}

// SLOWindowBurn is one alert window's burn evaluation.
type SLOWindowBurn struct {
	// WindowMinutes is the window length in simulated minutes (clamped
	// to the run horizon for short runs).
	WindowMinutes float64
	// Events and Errors count the window's observations.
	Events int64
	Errors int64
	// ErrorRate is Errors/Events; BurnRate is ErrorRate over the error
	// budget (1 − target).
	ErrorRate float64
	BurnRate  float64
}

// SLOObjective is one objective's evaluation.
type SLOObjective struct {
	Name        string
	Description string
	// Target is the required good-event fraction.
	Target float64
	// Events and Errors cover the whole run; GoodFraction is the overall
	// compliance and ErrorBudgetUsed the overall burn (above 1 the
	// objective is out of budget).
	Events          int64
	Errors          int64
	GoodFraction    float64
	ErrorBudgetUsed float64
	// BurnThreshold and Windows document the alert rule: Alerting is set
	// when the burn rate meets the threshold in every window at once.
	BurnThreshold float64
	Windows       []SLOWindowBurn
	Alerting      bool
}

// SLOReport is the job's service-level-objective evaluation at the end
// of the run, on the simulated clock.
type SLOReport struct {
	// HorizonMinutes is the simulated instant the alert windows end at:
	// the latest event time any objective saw.
	HorizonMinutes float64
	Objectives     []SLOObjective
	// Alerting reports whether any objective's burn-rate alert fires.
	Alerting bool
}

// MetricCounter is one named counter of a metrics report.
type MetricCounter struct {
	Name  string
	Value int64
}

// MetricGauge is one named gauge of a metrics report.
type MetricGauge struct {
	Name  string
	Value float64
}

// MetricBucket is one histogram bucket: the count of observations at
// or below the upper bound ("+Inf" for the overflow bucket).
type MetricBucket struct {
	LE    string
	Count int64
}

// MetricHistogram is one histogram of a metrics report, with
// pre-computed quantiles. Min, Max, and Sum cover finite observations.
type MetricHistogram struct {
	Name    string
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	P50     float64
	P95     float64
	P99     float64
	Buckets []MetricBucket
}

// MetricsReport is the public mirror of the job's metrics snapshot,
// sorted by name within each kind so serialisations are byte-stable
// across same-seed runs.
type MetricsReport struct {
	Counters   []MetricCounter
	Gauges     []MetricGauge
	Histograms []MetricHistogram
}

// coreOptions resolves the job's workload and device and builds the
// core options every execution path shares — the direct Tune below and
// the cluster dispatcher, which supplies its own store, checkpointing,
// and observability on top.
func (job Job) coreOptions() (core.Options, error) {
	if job.Workload == "" {
		return core.Options{}, errors.New("edgetune: job needs a workload (IC, SR, NLP, or OD)")
	}
	w, err := workload.New(job.Workload, job.Seed^0x9e3779b9)
	if err != nil {
		return core.Options{}, err
	}
	dev := device.I7()
	switch {
	case job.CustomDevice != nil:
		dev, err = job.CustomDevice.toDevice()
		if err != nil {
			return core.Options{}, err
		}
	case job.Device != "":
		dev, err = device.ByName(job.Device)
		if err != nil {
			return core.Options{}, err
		}
	}
	var as *autoscale.Config
	if job.Autoscale {
		as = &autoscale.Config{Min: job.AutoscaleMin, Max: job.AutoscaleMax}
	}
	return core.Options{
		Workload:       w,
		Device:         dev,
		Autoscale:      as,
		BudgetKind:     string(job.Budget),
		Metric:         core.Metric(job.Metric),
		ModelAlgo:      string(job.ModelAlgorithm),
		InferAlgo:      string(job.InferenceAlgorithm),
		SystemParams:   true,
		InferenceAware: !job.WithoutInference,
		StopAtTarget:   job.StopAtTarget,
		InitialConfigs: job.Configs,
		Rungs:          job.Rungs,
		MaxBrackets:    job.Brackets,
		InferTrials:    job.InferenceTrials,
		Seed:           job.Seed,
		Fault:          job.Faults.toInternal(),
		MaxAttempts:    job.MaxTrialAttempts,
		Checkpoint:     job.Checkpoint,
		Tenant:         job.Tenant,
		Profile:        job.Profile,
	}, nil
}

// Tune runs a tuning job to completion.
func Tune(ctx context.Context, job Job) (*Report, error) {
	if job.IncidentsDir != "" {
		job.Flight = true
	}
	opts, err := job.coreOptions()
	if err != nil {
		return nil, err
	}

	var tracer *obs.Tracer
	if job.TracePath != "" || job.TraceChromePath != "" || job.DebugAddr != "" || job.Flight {
		tracer = obs.NewTracer()
	}
	reg := obs.NewRegistry()
	ev := slo.NewEvaluator()

	var fr *flight.Recorder
	if job.Flight {
		slots := job.FlightSlots
		if slots <= 0 {
			slots = flight.DefaultSlots
		}
		fr = flight.New(slots)
		// Span completions feed the ring as they end; names and tracks
		// are pre-existing strings and small ints, so the hook keeps
		// Record's zero-allocation contract.
		tracer.SetSpanObserver(func(name string, track int, start, dur time.Duration) {
			fr.Record(start, flight.KindSpan, name, "", int64(track), int64(dur))
		})
	}

	if job.StoreWAL && job.StorePath == "" {
		return nil, fmt.Errorf("edgetune: StoreWAL requires StorePath")
	}
	var st *store.Store
	var dur *store.Durable
	if job.StorePath != "" {
		if job.StoreWAL {
			var sfs store.FS = store.OSFS{}
			if job.Faults.anyDisk() {
				inj, ierr := fault.NewInjector(job.Faults.toInternal(), job.Seed, counters.NewResilienceOn(reg))
				if ierr != nil {
					return nil, ierr
				}
				sfs = fault.NewFS(sfs, inj)
			}
			dur, err = store.OpenDurable(store.DurableOptions{
				SnapshotPath:     job.StorePath,
				SnapshotEvery:    job.StoreSnapshotEvery,
				FS:               sfs,
				Metrics:          reg,
				SLO:              ev,
				Trace:            tracer,
				KillAfterAppends: job.StoreKillAfterAppends,
				Flight:           fr,
			})
			if err != nil {
				return nil, fmt.Errorf("edgetune: open durable store: %w", err)
			}
			defer dur.Close()
			st = dur.Store()
		} else {
			st, err = loadOrNewStore(job.StorePath)
			if err != nil {
				return nil, err
			}
		}
	}
	if job.DebugAddr != "" {
		handlers := map[string]http.Handler{
			"/slo":     slo.Handler(ev),
			"/analyze": analyzeHandler(tracer),
		}
		if fr != nil {
			handlers["/flight"] = flight.Handler(fr)
		}
		dbg, derr := obs.StartDebugServerOpts(job.DebugAddr, obs.DebugOptions{
			Registry: reg,
			Handlers: handlers,
		})
		if derr != nil {
			return nil, fmt.Errorf("edgetune: debug server: %w", derr)
		}
		defer dbg.Close()
	}

	opts.Store = st
	opts.Trace = tracer
	opts.Metrics = reg
	opts.SLO = ev
	opts.Flight = fr
	if job.Checkpoint && job.StorePath != "" {
		// Flush checkpoints through the persisted store so a killed
		// process can resume from disk.
		opts.CheckpointPath = job.StorePath
	}

	var res core.Result
	if job.Hierarchical {
		res, err = core.TuneHierarchical(ctx, opts)
	} else {
		res, err = core.Tune(ctx, opts)
	}
	if err != nil {
		return nil, err
	}

	if job.StorePath != "" && st != nil {
		if dur != nil {
			// Close compacts the WAL into a final snapshot; the deferred
			// second Close is an idempotent no-op.
			if err := dur.Close(); err != nil {
				return nil, fmt.Errorf("edgetune: persist store: %w", err)
			}
		} else if err := st.Save(job.StorePath); err != nil {
			return nil, fmt.Errorf("edgetune: persist store: %w", err)
		}
	}
	if job.TracePath != "" {
		if err := tracer.SaveJSONL(job.TracePath); err != nil {
			return nil, fmt.Errorf("edgetune: write trace: %w", err)
		}
	}
	if job.TraceChromePath != "" {
		if err := tracer.SaveChrome(job.TraceChromePath); err != nil {
			return nil, fmt.Errorf("edgetune: write chrome trace: %w", err)
		}
	}
	rep := buildReport(res)
	if dur != nil {
		rr := dur.Recovery()
		rep.StoreRecovery = &StoreRecovery{
			SnapshotSource:      rr.SnapshotSource,
			SnapshotQuarantined: rr.SnapshotQuarantined,
			RecordsReplayed:     rr.RecordsReplayed,
			RecordsQuarantined:  rr.RecordsQuarantined,
			TruncatedBytes:      rr.TruncatedBytes,
			Entries:             rr.Entries,
			Checkpoints:         rr.Checkpoints,
		}
	}
	if job.IncidentsDir != "" && len(res.Incidents) > 0 {
		paths, werr := flight.WriteDossiers(job.IncidentsDir, "", res.Incidents)
		if werr != nil {
			return nil, fmt.Errorf("edgetune: write incident dossiers: %w", werr)
		}
		for i := range rep.Incidents {
			rep.Incidents[i].Path = paths[i]
		}
	}
	return rep, nil
}

func buildReport(res core.Result) *Report {
	r := &Report{
		Workload:       res.Workload,
		Device:         res.Device,
		Metric:         Metric(res.Metric),
		BestConfig:     map[string]float64(res.BestConfig.Clone()),
		BestAccuracy:   res.BestAccuracy,
		MaxAccuracy:    res.MaxAccuracy,
		ReachedTarget:  res.ReachedTarget,
		TuningMinutes:  res.TuningDuration.Minutes(),
		TuningEnergyKJ: res.TuningEnergyKJ,
		TrialsRun:      res.TrialsRun,
		CacheHits:      res.CacheHits,
		CacheMisses:    res.CacheMisses,

		RecommendationDegraded: res.RecommendationDegraded,
		Resilience:             buildResilienceReport(res.Resilience),
		Metrics:                buildMetricsReport(res.Metrics),
		SLO:                    buildSLOReport(res.SLO),
	}
	for _, p := range res.Profile {
		r.Profile = append(r.Profile, ProfileProbe{
			Stage:       p.Stage,
			Runs:        p.Runs,
			AllocsPerOp: p.AllocsPerOp,
			BytesPerOp:  p.BytesPerOp,
		})
	}
	for _, d := range res.Incidents {
		r.Incidents = append(r.Incidents, Incident{
			Trigger:   d.Trigger.Kind,
			Detail:    d.Trigger.Detail,
			AtMinutes: d.Trigger.At.Minutes(),
			Seq:       d.Trigger.Seq,
			Events:    len(d.Events),
			Truncated: d.Truncated,
			Digest:    d.Digest,
		})
	}
	if a := res.Autoscale; a != nil {
		r.Autoscale = &AutoscaleReport{
			Ticks:          a.Ticks,
			Decisions:      a.Decisions,
			ScaleUps:       a.ScaleUps,
			ScaleDowns:     a.ScaleDowns,
			DegradeSteps:   a.DegradeSteps,
			RecoverSteps:   a.RecoverSteps,
			DeepestMode:    a.DeepestMode.String(),
			FinalMode:      a.FinalMode.String(),
			FinalReplicas:  a.FinalReplicas,
			WarmupMinutes:  a.WarmupTime.Minutes(),
			WarmupEnergyKJ: a.WarmupEnergyJ / 1000,
			Digest:         fmt.Sprintf("%016x", a.Digest),
		}
	}
	if res.Recommendation.Signature != "" {
		r.Recommendation = InferenceRecommendation{
			Device:           res.Recommendation.Device,
			BatchSize:        int(res.Recommendation.Config[workload.ParamInferBatch]),
			Cores:            int(res.Recommendation.Config[workload.ParamCores]),
			FrequencyGHz:     res.Recommendation.Config[workload.ParamFreq],
			Throughput:       res.Recommendation.Throughput,
			EnergyPerSampleJ: res.Recommendation.EnergyPerSampleJ,
			LatencySeconds:   res.Recommendation.LatencySeconds,
		}
	}
	return r
}

func buildResilienceReport(s counters.ResilienceSnapshot) ResilienceReport {
	r := ResilienceReport{
		TotalFaults:      s.TotalFaults,
		Retries:          s.Retries,
		BreakerOpens:     s.BreakerOpens,
		BreakerHalfOpens: s.BreakerHalfOpens,
		BreakerCloses:    s.BreakerCloses,
		Degraded:         s.Degraded,
		ResumedRungs:     s.ResumedRungs,
		Shed:             s.Shed,
		RateLimited:      s.RateLimited,
		Preempted:        s.Preempted,
		Hedges:           s.Hedges,
		HedgeWins:        s.HedgeWins,
		Quarantines:      s.Quarantines,
		Probes:           s.Probes,
		Drained:          s.Drained,
	}
	for _, f := range s.Faults {
		r.Faults = append(r.Faults, FaultCount{Class: f.Class, Count: f.Count})
	}
	return r
}

func buildMetricsReport(s obs.Snapshot) MetricsReport {
	var r MetricsReport
	for _, c := range s.Counters {
		r.Counters = append(r.Counters, MetricCounter{Name: c.Name, Value: c.Value})
	}
	for _, g := range s.Gauges {
		r.Gauges = append(r.Gauges, MetricGauge{Name: g.Name, Value: g.Value})
	}
	for _, h := range s.Histograms {
		mh := MetricHistogram{
			Name: h.Name, Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			P50: h.P50, P95: h.P95, P99: h.P99,
		}
		for _, b := range h.Buckets {
			mh.Buckets = append(mh.Buckets, MetricBucket{LE: b.LE, Count: b.Count})
		}
		r.Histograms = append(r.Histograms, mh)
	}
	return r
}

func buildSLOReport(s slo.Snapshot) SLOReport {
	r := SLOReport{HorizonMinutes: s.Horizon.Minutes(), Alerting: s.Alerting()}
	for _, o := range s.Objectives {
		obj := SLOObjective{
			Name:            o.Name,
			Description:     o.Description,
			Target:          o.Target,
			Events:          o.Events,
			Errors:          o.Errors,
			GoodFraction:    o.GoodFraction,
			ErrorBudgetUsed: o.ErrorBudgetUsed,
			BurnThreshold:   o.BurnThreshold,
			Alerting:        o.Alerting,
		}
		for _, w := range o.Windows {
			obj.Windows = append(obj.Windows, SLOWindowBurn{
				WindowMinutes: w.Window.Minutes(),
				Events:        w.Events,
				Errors:        w.Errors,
				ErrorRate:     w.ErrorRate,
				BurnRate:      w.BurnRate,
			})
		}
		r.Objectives = append(r.Objectives, obj)
	}
	return r
}

// analyzeHandler serves a live trace analysis: the tracer's current
// spans parsed and analysed on each request (?format=json for the raw
// report).
func analyzeHandler(tr *obs.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		trace, err := analyze.ParseJSONL(&buf)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		rep := analyze.Analyze(trace)
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
	})
}

// loadOrNewStore loads an existing JSON store or creates an empty one
// if the file does not exist yet.
func loadOrNewStore(path string) (*store.Store, error) {
	st, err := store.Load(path)
	if err == nil {
		return st, nil
	}
	if errors.Is(err, os.ErrNotExist) {
		return store.New(), nil
	}
	return nil, err
}

// validParamNames are the config keys a Report.BestConfig may carry.
var _ = []string{
	workload.ParamLayers, workload.ParamEmbedDim, workload.ParamStride,
	workload.ParamDropout, workload.ParamTrainBatch, workload.ParamGPUs,
}

// configFromMap converts a public map into an internal search.Config.
func configFromMap(m map[string]float64) search.Config {
	cfg := make(search.Config, len(m))
	for k, v := range m {
		cfg[k] = v
	}
	return cfg
}
