package edgetune

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"edgetune/internal/testutil"
)

// TestProfileReport: a Profile-enabled job reports per-stage alloc
// probes, mirrors them as prof.* gauges in the metrics snapshot, and
// leaves probe-free jobs untouched.
func TestProfileReport(t *testing.T) {
	job := quickJob()
	job.Profile = true
	rep, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Profile) < 4 {
		t.Fatalf("Report.Profile has %d probes, want at least 4: %+v", len(rep.Profile), rep.Profile)
	}
	stages := map[string]bool{}
	for _, p := range rep.Profile {
		stages[p.Stage] = true
		if p.Runs <= 0 {
			t.Errorf("probe %q has Runs=%d", p.Stage, p.Runs)
		}
		if p.AllocsPerOp < 0 || p.BytesPerOp < 0 {
			t.Errorf("probe %q has negative averages: %+v", p.Stage, p)
		}
	}
	for _, want := range []string{"nn.minibatch-step", "perfmodel.infer-cost", "trace.emit", "store.put"} {
		if !stages[want] {
			t.Errorf("Report.Profile missing stage %q (have %v)", want, stages)
		}
	}
	gauges := 0
	for _, g := range rep.Metrics.Gauges {
		if strings.HasPrefix(g.Name, "prof.allocs-per-op.") {
			gauges++
		}
	}
	if gauges != len(rep.Profile) {
		t.Errorf("metrics snapshot has %d prof.allocs-per-op gauges, want %d", gauges, len(rep.Profile))
	}

	off, err := Tune(context.Background(), quickJob())
	if err != nil {
		t.Fatal(err)
	}
	if off.Profile != nil {
		t.Errorf("Profile off must report no probes, got %+v", off.Profile)
	}
	for _, g := range off.Metrics.Gauges {
		if strings.HasPrefix(g.Name, "prof.") {
			t.Errorf("Profile off must publish no prof gauges, got %s", g.Name)
		}
	}
}

// TestClusterShardMetricsAndMergedProm: the cluster exposes per-shard
// store instruments via ShardMetrics and serves a merged Prometheus
// exposition where shard series carry a shard label next to the
// unlabeled dispatcher series.
func TestClusterShardMetricsAndMergedProm(t *testing.T) {
	defer testutil.CheckGoroutineLeak(t, 4)

	c, err := NewCluster(ClusterOptions{
		Shards:    2,
		Dir:       t.TempDir(),
		Seed:      11,
		DebugAddr: "localhost:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := clusterJob("acme")
	job.Profile = true
	rep, err := c.Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Profile) == 0 {
		t.Error("cluster job with Profile must report probes")
	}

	shards := c.ShardMetrics()
	if len(shards) != 2 {
		t.Fatalf("ShardMetrics has %d shards, want 2", len(shards))
	}
	var storeWrites int64
	for _, m := range shards {
		for _, ctr := range m.Counters {
			if ctr.Name == "store.wal.appends" {
				storeWrites += ctr.Value
			}
		}
	}
	if storeWrites == 0 {
		t.Error("no store.wal.appends counter on any shard registry")
	}

	resp, err := http.Get("http://" + c.DebugAddr() + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if !strings.Contains(out, `store_wal_appends{shard="shard0"}`) &&
		!strings.Contains(out, `store_wal_appends{shard="shard1"}`) {
		t.Errorf("merged exposition lacks shard-labeled store series:\n%.2000s", out)
	}
	if !strings.Contains(out, "cluster_jobs 1") {
		t.Errorf("merged exposition lacks the unlabeled dispatcher series:\n%.2000s", out)
	}
	if n := strings.Count(out, "# TYPE store_wal_appends counter"); n != 1 {
		t.Errorf("store_wal_appends TYPE header appears %d times, want 1", n)
	}
}
