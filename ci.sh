#!/bin/sh
# Local CI gate: formatting, vet, build, and the full test suite under
# the race detector. Fails fast on the first problem.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -shuffle=on =="
go test -shuffle=on ./...

echo "== trace determinism =="
# Two independent same-seed runs must write byte-identical trace files,
# in both the JSONL and Chrome trace-event formats.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./examples/tracing -seed 7 -trace "$tracedir/a.jsonl" -chrome "$tracedir/a.json" >/dev/null
go run ./examples/tracing -seed 7 -trace "$tracedir/b.jsonl" -chrome "$tracedir/b.json" >/dev/null
cmp "$tracedir/a.jsonl" "$tracedir/b.jsonl"
cmp "$tracedir/a.json" "$tracedir/b.json"

echo "== trace analytics =="
# The analyzer must be as deterministic as the traces it reads: same
# trace, byte-identical analysis; and a span-class diff of the two
# same-seed traces must pass the regression gate cleanly.
go run ./cmd/tracetool analyze "$tracedir/a.jsonl" > "$tracedir/a.analysis"
go run ./cmd/tracetool analyze "$tracedir/b.jsonl" > "$tracedir/b.analysis"
cmp "$tracedir/a.analysis" "$tracedir/b.analysis"
grep -q "critical paths" "$tracedir/a.analysis"
go run ./cmd/tracetool diff "$tracedir/a.jsonl" "$tracedir/b.jsonl" >/dev/null

echo "== tracing no-op overhead =="
# Smoke-run the disabled-tracing benchmark so a regression that breaks
# the nil-safe fast path is caught even without a full bench sweep.
go test -run '^$' -bench BenchmarkTracingDisabled -benchtime=1x ./internal/obs

echo "== store durability under faulty disks =="
# The durability layer's own tests plus the disk-fault injection tests,
# twice under the race detector so any run-order or leftover-state bug
# in WAL replay and quarantine handling surfaces.
go test -race -count=2 ./internal/store ./internal/fault

echo "== crash-recovery gate =="
# Kill the tuner (exit 3) right after an acknowledged WAL append,
# restart it from the on-disk store, and repeat until a run survives.
# The surviving run's outcome digest must match an uninterrupted
# same-seed run, and the recovered store must scrub clean.
go build -o "$tracedir/chaos" ./examples/chaos
"$tracedir/chaos" -seed 42 > "$tracedir/chaos-clean.out"
clean_digest=$(tail -n 1 "$tracedir/chaos-clean.out")
restarts=0
while :; do
    rc=0
    "$tracedir/chaos" -seed 42 -store "$tracedir/crash.json" -wal -kill-after 3 \
        > "$tracedir/chaos-crash.out" 2>&1 || rc=$?
    [ "$rc" -eq 0 ] && break
    if [ "$rc" -ne 3 ]; then
        echo "crash harness died with unexpected status $rc:" >&2
        cat "$tracedir/chaos-crash.out" >&2
        exit 1
    fi
    restarts=$((restarts + 1))
    if [ "$restarts" -gt 100 ]; then
        echo "crash harness never converged after $restarts restarts" >&2
        exit 1
    fi
done
crash_digest=$(tail -n 1 "$tracedir/chaos-crash.out")
if [ "$clean_digest" != "$crash_digest" ]; then
    echo "crash/restart diverged: '$crash_digest' != uninterrupted '$clean_digest'" >&2
    exit 1
fi
echo "converged after $restarts kill/restart cycles: $crash_digest"
go run ./cmd/tracetool store verify "$tracedir/crash.json"

echo "== benchtab wall-time regression gate =="
# Run the quick static tables fresh (into a scratch file, so today's
# run never clobbers a committed baseline) and gate on wall-time
# regressions against the newest committed BENCH_*.json. -tolerance is
# the allowed relative growth; the absolute floor inside check-bench
# keeps microsecond-scale baselines from flagging scheduler noise.
BENCH_TOLERANCE="${BENCH_TOLERANCE:-0.5}"
baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
go run ./cmd/benchtab -only "Table 2" -json "$tracedir/bench-current.json" >/dev/null
if [ -z "$baseline" ]; then
    # A missing baseline is a repo defect, not something CI should paper
    # over by seeding its own: a self-seeded file would always pass and
    # silently launder whatever perf the seeding machine happened to have.
    echo "no committed BENCH_*.json baseline found." >&2
    echo "generate one on a quiet machine and commit it:" >&2
    echo "    go run ./cmd/benchtab -only \"Table 2\" -json BENCH_\$(date +%Y%m%d).json" >&2
    exit 1
fi
go run ./cmd/tracetool check-bench -baseline "$baseline" \
    -tolerance "$BENCH_TOLERANCE" "$tracedir/bench-current.json"

echo "== cluster-failover gate =="
# The sharded cluster's own tests, twice under the race detector, then
# the end-to-end chaos proof: kill a shard mid-bracket, fail over to
# its WAL-shipped follower, and require the exact outcome digest of the
# unsharded uninterrupted run above. Every shard replica's store —
# including the abandoned primary — must scrub clean afterwards.
go test -race -count=2 ./internal/cluster
cdir="$tracedir/cluster"
"$tracedir/chaos" -seed 42 -cluster 2 -cluster-dir "$cdir" -kill-shard-after 2 \
    > "$tracedir/chaos-cluster.out"
grep -q "failed over: true" "$tracedir/chaos-cluster.out" || {
    echo "cluster gate never failed over:" >&2
    cat "$tracedir/chaos-cluster.out" >&2
    exit 1
}
cluster_digest=$(tail -n 1 "$tracedir/chaos-cluster.out")
if [ "$clean_digest" != "$cluster_digest" ]; then
    echo "failed-over cluster run diverged: '$cluster_digest' != unsharded '$clean_digest'" >&2
    exit 1
fi
echo "failed-over cluster run converged: $cluster_digest"
# Glob on the replica directories, not the snapshot files: the
# abandoned primary has only a WAL (no snapshot), and a file glob
# would silently skip exactly the dir the failover left behind.
for rdir in "$cdir"/shard*/primary "$cdir"/shard*/follower; do
    storefile="$rdir/store.json"
    [ -e "$storefile" ] || [ -e "$storefile.wal" ] || continue
    go run ./cmd/tracetool store verify "$storefile"
done

echo "== autoscale-resilience gate =="
# The autoscaling controller's own tests and the serving-layer chaos
# tests (flash-crowd determinism, mass-device-failure recovery through
# the degradation ladder, stalled scale-ups), twice under the race
# detector. Then the overload example twice: same seed must produce
# byte-identical output, the ladder must both engage and release, and
# the decision digest line must be present.
go test -race -count=2 ./internal/autoscale
go test -race -count=2 -run Autoscale ./internal/core
go build -o "$tracedir/overload" ./examples/overload
"$tracedir/overload" > "$tracedir/overload-a.out"
"$tracedir/overload" > "$tracedir/overload-b.out"
cmp "$tracedir/overload-a.out" "$tracedir/overload-b.out"
grep -q "ladder engaged" "$tracedir/overload-a.out"
grep -q "ladder released" "$tracedir/overload-a.out"
grep -q "autoscale digest: " "$tracedir/overload-a.out"
# Control-loop wall-time trend, gated against the same committed
# baseline as the static tables (absent IDs SKIP, so older baselines
# stay usable).
go run ./cmd/benchtab -only BenchmarkAutoscaleDecision \
    -json "$tracedir/bench-autoscale.json" >/dev/null
go run ./cmd/tracetool check-bench -baseline "$baseline" \
    -tolerance "$BENCH_TOLERANCE" "$tracedir/bench-autoscale.json"

echo "== profile-plane gate =="
# The profiling plane end to end. First the registry/probe layers under
# concurrent writers, twice under the race detector. Then the expanded
# hot-loop benchmark suite: every Benchmark* experiment reports
# allocs/op, gated against the committed baseline (wall time AND
# allocation regressions). Finally a labeled chaos run: capture a CPU
# profile across a profiled cluster run and require that the pprof
# label taxonomy (tenant/shard/rung/bracket) actually landed in it.
go test -race -count=2 \
    -run 'TestRegistryConcurrentWriters|TestWritePrometheus|TestProf|TestMeasure|TestDo' \
    ./internal/obs ./internal/obs/prof
go run ./cmd/benchtab -only Benchmark -json "$tracedir/bench-hotloops.json" >/dev/null
go run ./cmd/tracetool check-bench -baseline "$baseline" \
    -tolerance "$BENCH_TOLERANCE" "$tracedir/bench-hotloops.json"
pdir="$tracedir/profplane"
"$tracedir/chaos" -seed 42 -cluster 2 -cluster-dir "$pdir" -profile \
    -cpuprofile "$tracedir/chaos-cpu.pprof" > "$tracedir/chaos-profile.out"
grep -q "profile (allocs/op, bytes/op):" "$tracedir/chaos-profile.out"
grep -q "nn.minibatch-step" "$tracedir/chaos-profile.out"
go run ./cmd/tracetool profile check -want tenant,shard,rung,bracket \
    "$tracedir/chaos-cpu.pprof"
# The profiled run must still be the same run: label propagation and
# alloc probes ride alongside the pipeline, never inside the digest.
profile_digest=$(grep '^digest: ' "$tracedir/chaos-profile.out")
if [ "$clean_digest" != "$profile_digest" ]; then
    echo "profiled run diverged: '$profile_digest' != unprofiled '$clean_digest'" >&2
    exit 1
fi
# Label-free fast path: the disabled-profiling benchmark must keep
# running (a regression here would tax every unprofiled hot loop).
go test -run '^$' -bench BenchmarkProfDisabled -benchtime=1x ./internal/obs/prof

echo "ci: all checks passed"
