#!/bin/sh
# Local CI gate: formatting, vet, build, and the full test suite under
# the race detector. Fails fast on the first problem, and ends every
# run — pass or fail — with a one-line-per-gate summary.
set -eu

cd "$(dirname "$0")"

tracedir=$(mktemp -d)

# Per-gate bookkeeping: gate() closes the previous gate as PASS and
# opens the next; the EXIT trap closes the last one with the run's
# status (under set -e a failed command exits through the trap, so the
# in-flight gate is the one that failed) and prints the summary table.
summary="$tracedir/summary.txt"
: > "$summary"
current_gate=""
gate_start=0
finish_gate() {
    [ -n "$current_gate" ] || return 0
    printf '%-44s %-4s %4ds\n' "$current_gate" "$1" \
        "$(( $(date +%s) - gate_start ))" >> "$summary"
    current_gate=""
}
gate() {
    finish_gate PASS
    current_gate="$1"
    gate_start=$(date +%s)
    echo "== $1 =="
}
on_exit() {
    rc=$?
    if [ "$rc" -eq 0 ]; then finish_gate PASS; else finish_gate FAIL; fi
    if [ -s "$summary" ]; then
        echo
        echo "== gate summary =="
        cat "$summary"
    fi
    rm -rf "$tracedir"
    exit "$rc"
}
trap on_exit EXIT

gate "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

gate "go vet"
go vet ./...

gate "go build"
go build ./...

gate "go test -race"
go test -race ./...

gate "go test -shuffle=on"
go test -shuffle=on ./...

gate "trace determinism"
# Two independent same-seed runs must write byte-identical trace files,
# in both the JSONL and Chrome trace-event formats.
go run ./examples/tracing -seed 7 -trace "$tracedir/a.jsonl" -chrome "$tracedir/a.json" >/dev/null
go run ./examples/tracing -seed 7 -trace "$tracedir/b.jsonl" -chrome "$tracedir/b.json" >/dev/null
cmp "$tracedir/a.jsonl" "$tracedir/b.jsonl"
cmp "$tracedir/a.json" "$tracedir/b.json"

gate "trace analytics"
# The analyzer must be as deterministic as the traces it reads: same
# trace, byte-identical analysis; and a span-class diff of the two
# same-seed traces must pass the regression gate cleanly.
go run ./cmd/tracetool analyze "$tracedir/a.jsonl" > "$tracedir/a.analysis"
go run ./cmd/tracetool analyze "$tracedir/b.jsonl" > "$tracedir/b.analysis"
cmp "$tracedir/a.analysis" "$tracedir/b.analysis"
grep -q "critical paths" "$tracedir/a.analysis"
go run ./cmd/tracetool diff "$tracedir/a.jsonl" "$tracedir/b.jsonl" >/dev/null

gate "tracing no-op overhead"
# Smoke-run the disabled-tracing benchmark so a regression that breaks
# the nil-safe fast path is caught even without a full bench sweep.
go test -run '^$' -bench BenchmarkTracingDisabled -benchtime=1x ./internal/obs

gate "store durability under faulty disks"
# The durability layer's own tests plus the disk-fault injection tests,
# twice under the race detector so any run-order or leftover-state bug
# in WAL replay and quarantine handling surfaces.
go test -race -count=2 ./internal/store ./internal/fault

gate "crash-recovery gate"
# Kill the tuner (exit 3) right after an acknowledged WAL append,
# restart it from the on-disk store, and repeat until a run survives.
# The surviving run's outcome digest must match an uninterrupted
# same-seed run, and the recovered store must scrub clean.
go build -o "$tracedir/chaos" ./examples/chaos
"$tracedir/chaos" -seed 42 > "$tracedir/chaos-clean.out"
clean_digest=$(tail -n 1 "$tracedir/chaos-clean.out")
restarts=0
while :; do
    rc=0
    "$tracedir/chaos" -seed 42 -store "$tracedir/crash.json" -wal -kill-after 3 \
        > "$tracedir/chaos-crash.out" 2>&1 || rc=$?
    [ "$rc" -eq 0 ] && break
    if [ "$rc" -ne 3 ]; then
        echo "crash harness died with unexpected status $rc:" >&2
        cat "$tracedir/chaos-crash.out" >&2
        exit 1
    fi
    restarts=$((restarts + 1))
    if [ "$restarts" -gt 100 ]; then
        echo "crash harness never converged after $restarts restarts" >&2
        exit 1
    fi
done
crash_digest=$(tail -n 1 "$tracedir/chaos-crash.out")
if [ "$clean_digest" != "$crash_digest" ]; then
    echo "crash/restart diverged: '$crash_digest' != uninterrupted '$clean_digest'" >&2
    exit 1
fi
echo "converged after $restarts kill/restart cycles: $crash_digest"
go run ./cmd/tracetool store verify "$tracedir/crash.json"

gate "benchtab wall-time regression gate"
# Run the quick static tables fresh (into a scratch file, so today's
# run never clobbers a committed baseline) and gate on wall-time
# regressions against the newest committed BENCH_*.json. -tolerance is
# the allowed relative growth; the absolute floor inside check-bench
# keeps microsecond-scale baselines from flagging scheduler noise.
BENCH_TOLERANCE="${BENCH_TOLERANCE:-0.5}"
baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
go run ./cmd/benchtab -only "Table 2" -json "$tracedir/bench-current.json" >/dev/null
if [ -z "$baseline" ]; then
    # A missing baseline is a repo defect, not something CI should paper
    # over by seeding its own: a self-seeded file would always pass and
    # silently launder whatever perf the seeding machine happened to have.
    echo "no committed BENCH_*.json baseline found." >&2
    echo "generate one on a quiet machine and commit it:" >&2
    echo "    go run ./cmd/benchtab -only \"Table 2\" -json BENCH_\$(date +%Y%m%d).json" >&2
    exit 1
fi
go run ./cmd/tracetool check-bench -baseline "$baseline" \
    -tolerance "$BENCH_TOLERANCE" "$tracedir/bench-current.json"

gate "cluster-failover gate"
# The sharded cluster's own tests, twice under the race detector, then
# the end-to-end chaos proof: kill a shard mid-bracket, fail over to
# its WAL-shipped follower, and require the exact outcome digest of the
# unsharded uninterrupted run above. Every shard replica's store —
# including the abandoned primary — must scrub clean afterwards.
go test -race -count=2 ./internal/cluster
cdir="$tracedir/cluster"
"$tracedir/chaos" -seed 42 -cluster 2 -cluster-dir "$cdir" -kill-shard-after 2 \
    > "$tracedir/chaos-cluster.out"
grep -q "failed over: true" "$tracedir/chaos-cluster.out" || {
    echo "cluster gate never failed over:" >&2
    cat "$tracedir/chaos-cluster.out" >&2
    exit 1
}
cluster_digest=$(tail -n 1 "$tracedir/chaos-cluster.out")
if [ "$clean_digest" != "$cluster_digest" ]; then
    echo "failed-over cluster run diverged: '$cluster_digest' != unsharded '$clean_digest'" >&2
    exit 1
fi
echo "failed-over cluster run converged: $cluster_digest"
# Glob on the replica directories, not the snapshot files: the
# abandoned primary has only a WAL (no snapshot), and a file glob
# would silently skip exactly the dir the failover left behind.
for rdir in "$cdir"/shard*/primary "$cdir"/shard*/follower; do
    storefile="$rdir/store.json"
    [ -e "$storefile" ] || [ -e "$storefile.wal" ] || continue
    go run ./cmd/tracetool store verify "$storefile"
done

gate "autoscale-resilience gate"
# The autoscaling controller's own tests and the serving-layer chaos
# tests (flash-crowd determinism, mass-device-failure recovery through
# the degradation ladder, stalled scale-ups), twice under the race
# detector. Then the overload example twice: same seed must produce
# byte-identical output, the ladder must both engage and release, and
# the decision digest line must be present.
go test -race -count=2 ./internal/autoscale
go test -race -count=2 -run Autoscale ./internal/core
go build -o "$tracedir/overload" ./examples/overload
"$tracedir/overload" > "$tracedir/overload-a.out"
"$tracedir/overload" > "$tracedir/overload-b.out"
cmp "$tracedir/overload-a.out" "$tracedir/overload-b.out"
grep -q "ladder engaged" "$tracedir/overload-a.out"
grep -q "ladder released" "$tracedir/overload-a.out"
grep -q "autoscale digest: " "$tracedir/overload-a.out"
# Control-loop wall-time trend, gated against the same committed
# baseline as the static tables (absent IDs SKIP, so older baselines
# stay usable).
go run ./cmd/benchtab -only BenchmarkAutoscaleDecision \
    -json "$tracedir/bench-autoscale.json" >/dev/null
go run ./cmd/tracetool check-bench -baseline "$baseline" \
    -tolerance "$BENCH_TOLERANCE" "$tracedir/bench-autoscale.json"

gate "profile-plane gate"
# The profiling plane end to end. First the registry/probe layers under
# concurrent writers, twice under the race detector. Then the expanded
# hot-loop benchmark suite: every Benchmark* experiment reports
# allocs/op, gated against the committed baseline (wall time AND
# allocation regressions). Finally a labeled chaos run: capture a CPU
# profile across a profiled cluster run and require that the pprof
# label taxonomy (tenant/shard/rung/bracket) actually landed in it.
go test -race -count=2 \
    -run 'TestRegistryConcurrentWriters|TestWritePrometheus|TestProf|TestMeasure|TestDo' \
    ./internal/obs ./internal/obs/prof
go run ./cmd/benchtab -only Benchmark -json "$tracedir/bench-hotloops.json" >/dev/null
go run ./cmd/tracetool check-bench -baseline "$baseline" \
    -tolerance "$BENCH_TOLERANCE" "$tracedir/bench-hotloops.json"
pdir="$tracedir/profplane"
"$tracedir/chaos" -seed 42 -cluster 2 -cluster-dir "$pdir" -profile \
    -cpuprofile "$tracedir/chaos-cpu.pprof" > "$tracedir/chaos-profile.out"
grep -q "profile (allocs/op, bytes/op):" "$tracedir/chaos-profile.out"
grep -q "nn.minibatch-step" "$tracedir/chaos-profile.out"
go run ./cmd/tracetool profile check -want tenant,shard,rung,bracket \
    "$tracedir/chaos-cpu.pprof"
# The profiled run must still be the same run: label propagation and
# alloc probes ride alongside the pipeline, never inside the digest.
profile_digest=$(grep '^digest: ' "$tracedir/chaos-profile.out")
if [ "$clean_digest" != "$profile_digest" ]; then
    echo "profiled run diverged: '$profile_digest' != unprofiled '$clean_digest'" >&2
    exit 1
fi
# Label-free fast path: the disabled-profiling benchmark must keep
# running (a regression here would tax every unprofiled hot loop).
go test -run '^$' -bench BenchmarkProfDisabled -benchtime=1x ./internal/obs/prof

gate "flight-recorder gate"
# The always-on flight recorder end to end. The recorder's own tests
# twice under the race detector; then two same-seed failed-over cluster
# chaos runs with recording on (-profile stays off: alloc gauges are
# the one nondeterministic report section) — stdout and every incident
# dossier artefact must be byte-identical, the failover dossier must
# digest-verify and hold the kill/promotion events inside its window,
# and `incident diff` must agree. Finally the Record hot path's alloc
# probe is gated at exactly zero allocations per event.
go test -race -count=2 ./internal/obs/flight
fdir="$tracedir/flight"
"$tracedir/chaos" -seed 42 -cluster 2 -cluster-dir "$fdir/c1" -kill-shard-after 2 \
    -flight -incidents-dir "$fdir/inc1" > "$tracedir/chaos-flight-a.out"
"$tracedir/chaos" -seed 42 -cluster 2 -cluster-dir "$fdir/c2" -kill-shard-after 2 \
    -flight -incidents-dir "$fdir/inc2" > "$tracedir/chaos-flight-b.out"
cmp "$tracedir/chaos-flight-a.out" "$tracedir/chaos-flight-b.out"
grep -q "failed over: true" "$tracedir/chaos-flight-a.out"
grep -q "incident .* shard-failover" "$tracedir/chaos-flight-a.out" || {
    echo "flight run reported no shard-failover incident:" >&2
    cat "$tracedir/chaos-flight-a.out" >&2
    exit 1
}
# The recorded run must still be the same run: recording is observation
# only, never inside the digest.
flight_digest=$(grep '^digest: ' "$tracedir/chaos-flight-a.out")
if [ "$clean_digest" != "$flight_digest" ]; then
    echo "flight-recorded run diverged: '$flight_digest' != plain '$clean_digest'" >&2
    exit 1
fi
ls "$fdir"/inc1/*.json >/dev/null || {
    echo "flight run wrote no incident dossiers" >&2
    exit 1
}
for dossier in "$fdir"/inc1/*.json; do
    cmp "$dossier" "$fdir/inc2/$(basename "$dossier")"
done
fdos=$(ls "$fdir"/inc1/*shard-failover.json | head -n 1)
go run ./cmd/tracetool incident show -events "$fdos" > "$tracedir/failover-incident.out"
grep -q "(verified)" "$tracedir/failover-incident.out"
grep -q "failover.*kill" "$tracedir/failover-incident.out"
grep -q "failover.*promoted" "$tracedir/failover-incident.out"
go run ./cmd/tracetool incident diff "$fdos" \
    "$fdir/inc2/$(basename "$fdos")" >/dev/null
# Zero-alloc Record: "always-on" is only honest if a record never
# heap-allocates, so this one experiment gets no alloc headroom at all.
go run ./cmd/benchtab -only BenchmarkFlightRecord \
    -json "$tracedir/bench-flight.json" >/dev/null
go run ./cmd/tracetool check-bench -baseline "$baseline" \
    -tolerance "$BENCH_TOLERANCE" -alloc-tolerance 0 -alloc-slack 0 \
    "$tracedir/bench-flight.json"

gate "chaos-fuzz gate"
# The seeded failure-space fuzzer end to end. Its own tests twice under
# the race detector; then replay the full committed corpus (every entry
# must still hold every invariant), prove replay determinism
# (byte-identical double replay), prove the gate has teeth with the
# built-in planted accounting bug (exploration must catch it, shrink it
# to one event, and its repro must replay to the same failure — through
# tracetool and through the chaos example binary, whose exit codes now
# propagate), and finally a fresh seeded exploration budget in both
# modes that must find nothing new.
go test -race -count=2 ./internal/chaosfuzz
go build -o "$tracedir/tracetool" ./cmd/tracetool
for repro in fuzz/corpus/*.json; do
    "$tracedir/tracetool" fuzz replay "$repro" > "$tracedir/fuzz-replay.out" || {
        echo "corpus entry $repro no longer holds every invariant:" >&2
        cat "$tracedir/fuzz-replay.out" >&2
        exit 1
    }
done
entry=$(ls fuzz/corpus/*.json | head -n 1)
"$tracedir/tracetool" fuzz replay "$entry" > "$tracedir/fuzz-a.out"
"$tracedir/tracetool" fuzz replay "$entry" > "$tracedir/fuzz-b.out"
cmp "$tracedir/fuzz-a.out" "$tracedir/fuzz-b.out"
rc=0
"$tracedir/tracetool" fuzz run -mode single -seed 7 -n 6 -plant-double-charge \
    -out "$tracedir/fuzz-findings" > "$tracedir/fuzz-planted.out" 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "planted double charge was not caught (exit $rc):" >&2
    cat "$tracedir/fuzz-planted.out" >&2
    exit 1
fi
grep -q "budget-conservation" "$tracedir/fuzz-planted.out"
grep -q "shrunk to 1 event" "$tracedir/fuzz-planted.out"
rc=0
"$tracedir/tracetool" fuzz replay -plant-double-charge \
    "$tracedir/fuzz-findings/repro-01.json" >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "emitted repro did not replay the planted failure (exit $rc)" >&2
    exit 1
fi
rc=0
"$tracedir/chaos" -fuzz-replay "$tracedir/fuzz-findings/repro-01.json" \
    -fuzz-plant-double-charge >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "examples/chaos swallowed the fuzz-replay gate (exit $rc)" >&2
    exit 1
fi
"$tracedir/chaos" -fuzz-replay "$entry" >/dev/null
"$tracedir/tracetool" fuzz run -mode single -seed 20260808 -n 24 \
    > "$tracedir/fuzz-explore-single.out"
"$tracedir/tracetool" fuzz run -mode cluster -seed 20260808 -n 12 \
    > "$tracedir/fuzz-explore-cluster.out"
grep -q "no invariant violations" "$tracedir/fuzz-explore-single.out"
grep -q "no invariant violations" "$tracedir/fuzz-explore-cluster.out"

echo "ci: all checks passed"
