#!/bin/sh
# Local CI gate: formatting, vet, build, and the full test suite under
# the race detector. Fails fast on the first problem.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -shuffle=on =="
go test -shuffle=on ./...

echo "ci: all checks passed"
