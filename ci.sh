#!/bin/sh
# Local CI gate: formatting, vet, build, and the full test suite under
# the race detector. Fails fast on the first problem.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -shuffle=on =="
go test -shuffle=on ./...

echo "== trace determinism =="
# Two independent same-seed runs must write byte-identical trace files,
# in both the JSONL and Chrome trace-event formats.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./examples/tracing -seed 7 -trace "$tracedir/a.jsonl" -chrome "$tracedir/a.json" >/dev/null
go run ./examples/tracing -seed 7 -trace "$tracedir/b.jsonl" -chrome "$tracedir/b.json" >/dev/null
cmp "$tracedir/a.jsonl" "$tracedir/b.jsonl"
cmp "$tracedir/a.json" "$tracedir/b.json"

echo "== tracing no-op overhead =="
# Smoke-run the disabled-tracing benchmark so a regression that breaks
# the nil-safe fast path is caught even without a full bench sweep.
go test -run '^$' -bench BenchmarkTracingDisabled -benchtime=1x ./internal/obs

echo "== benchtab wall-time report =="
# Record per-experiment wall time for the quick static tables; the
# BENCH_*.json artefacts let successive CI runs be compared.
go run ./cmd/benchtab -only "Table 2" -json "BENCH_$(date +%Y%m%d).json" >/dev/null
echo "wrote BENCH_$(date +%Y%m%d).json"

echo "ci: all checks passed"
