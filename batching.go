package edgetune

import (
	"errors"
	"fmt"

	"edgetune/internal/batching"
	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
	"edgetune/internal/workload"
)

// modelLatency builds a batch-size → (latency, energy) function for a
// tuned model on a device, used by both batching scenarios.
func modelLatency(workloadID string, modelConfig map[string]float64, deviceName string, cores int, freqGHz float64) (batching.LatencyFn, error) {
	w, err := workload.New(workloadID, 0)
	if err != nil {
		return nil, err
	}
	dev := device.I7()
	if deviceName != "" {
		dev, err = device.ByName(deviceName)
		if err != nil {
			return nil, err
		}
	}
	flops, params, err := w.PaperCost(configFromMap(modelConfig))
	if err != nil {
		return nil, err
	}
	if cores <= 0 {
		cores = dev.Profile.MaxCores
	}
	if freqGHz <= 0 {
		freqGHz = dev.Profile.MaxFreqGHz
	}
	return func(batch int) (float64, float64, error) {
		r, err := dev.Estimate(perfmodel.InferSpec{
			FLOPsPerSample: flops,
			Params:         params,
			BatchSize:      batch,
			Cores:          cores,
			FreqGHz:        freqGHz,
		})
		if err != nil {
			return 0, 0, err
		}
		return r.BatchLatency.Seconds(), r.EnergyPerSampleJ * float64(batch), nil
	}, nil
}

// ServerScenario is the paper's fixed-frequency server (§3.4, Figure 8
// top): every query carries SamplesPerQuery samples and queries arrive
// every PeriodSec seconds. The tuner picks how to split the samples
// into inference batches.
type ServerScenario struct {
	// Workload and ModelConfig identify the deployed model.
	Workload    string
	ModelConfig map[string]float64
	// Device names the edge target (default "i7"); Cores/FrequencyGHz
	// override the device's maximum settings when positive.
	Device       string
	Cores        int
	FrequencyGHz float64
	// SamplesPerQuery is N; PeriodSec is the query inter-arrival time.
	SamplesPerQuery int
	PeriodSec       float64
}

// ServerPlan is the tuned splitting decision.
type ServerPlan struct {
	// Split is the recommended inference batch size.
	Split int
	// ResponseSec is the resulting per-query response time.
	ResponseSec float64
	// EnergyPerQueryJ is the energy to process one query.
	EnergyPerQueryJ float64
	// Stable reports whether the server keeps up with the arrival rate.
	Stable bool
}

// PlanServer tunes the batch split for a server scenario.
func PlanServer(s ServerScenario) (ServerPlan, error) {
	if s.Workload == "" {
		return ServerPlan{}, errors.New("edgetune: server scenario needs a workload")
	}
	lat, err := modelLatency(s.Workload, s.ModelConfig, s.Device, s.Cores, s.FrequencyGHz)
	if err != nil {
		return ServerPlan{}, err
	}
	best, err := batching.Server{
		SamplesPerQuery: s.SamplesPerQuery,
		PeriodSec:       s.PeriodSec,
	}.Optimal(lat)
	if err != nil {
		return ServerPlan{}, fmt.Errorf("edgetune: server scenario: %w", err)
	}
	return ServerPlan{
		Split:           best.Split,
		ResponseSec:     best.ResponseSec,
		EnergyPerQueryJ: best.EnergyPerQueryJ,
		Stable:          best.Stable,
	}, nil
}

// MultiStreamScenario is the paper's Poisson multi-stream (§3.4, Figure
// 8 bottom): single-sample queries arrive at rate ArrivalsPerSec and
// the tuner picks how many to aggregate per inference call.
type MultiStreamScenario struct {
	Workload    string
	ModelConfig map[string]float64
	Device      string
	Cores       int
	// FrequencyGHz overrides the device maximum when positive.
	FrequencyGHz float64
	// ArrivalsPerSec is the Poisson arrival rate λ.
	ArrivalsPerSec float64
	// Samples is the simulation length (default 2000 arrivals).
	Samples int
	// MaxBatch bounds the aggregation search (default 64).
	MaxBatch int
	// Seed drives the deterministic arrival process.
	Seed uint64
}

// StreamPlan is the tuned aggregation decision.
type StreamPlan struct {
	// BatchCap is the recommended aggregation limit.
	BatchCap int
	// MeanResponseSec and P95ResponseSec summarise per-sample response
	// times at the recommendation.
	MeanResponseSec float64
	P95ResponseSec  float64
	// MeanBatch is the average dispatched batch size.
	MeanBatch float64
	// EnergyPerSampleJ is the mean per-sample energy.
	EnergyPerSampleJ float64
}

// PlanMultiStream tunes sample aggregation for a multi-stream scenario.
func PlanMultiStream(s MultiStreamScenario) (StreamPlan, error) {
	if s.Workload == "" {
		return StreamPlan{}, errors.New("edgetune: multi-stream scenario needs a workload")
	}
	lat, err := modelLatency(s.Workload, s.ModelConfig, s.Device, s.Cores, s.FrequencyGHz)
	if err != nil {
		return StreamPlan{}, err
	}
	if s.Samples == 0 {
		s.Samples = 2000
	}
	if s.MaxBatch == 0 {
		s.MaxBatch = 64
	}
	best, err := batching.MultiStream{
		LambdaPerSec: s.ArrivalsPerSec,
		Samples:      s.Samples,
		Seed:         s.Seed,
	}.OptimalBatch(lat, s.MaxBatch)
	if err != nil {
		return StreamPlan{}, fmt.Errorf("edgetune: multi-stream scenario: %w", err)
	}
	return StreamPlan{
		BatchCap:         best.BatchCap,
		MeanResponseSec:  best.MeanResponseSec,
		P95ResponseSec:   best.P95ResponseSec,
		MeanBatch:        best.MeanBatch,
		EnergyPerSampleJ: best.EnergyPerSampleJ,
	}, nil
}
