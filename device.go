package edgetune

import (
	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
)

// DeviceProfile describes a custom edge device, for tuning against
// hardware beyond the paper's three testbed boards. Unset modelling
// fields (BytesPerFLOP, BatchSetupSec, batching knee) receive sensible
// defaults.
type DeviceProfile struct {
	// Name identifies the device; it must not collide with the built-in
	// names (armv7, rpi3b+, i7).
	Name string
	// Cores is the physical core count.
	Cores int
	// MinFrequencyGHz and MaxFrequencyGHz bound the DVFS range.
	MinFrequencyGHz float64
	MaxFrequencyGHz float64
	// FlopsPerCorePerGHz is the effective per-core throughput at 1 GHz.
	FlopsPerCorePerGHz float64
	// MemBytesPerSec is the memory bandwidth.
	MemBytesPerSec float64
	// IdlePowerW and CorePowerW parameterise the power model.
	IdlePowerW float64
	CorePowerW float64
	// Optional model fields; zero selects a default.
	BytesPerFLOP      float64
	BatchSetupSec     float64
	MemBatchKnee      float64
	MemPressureFactor float64
}

// toDevice validates and converts the public profile.
func (p DeviceProfile) toDevice() (device.Device, error) {
	return device.Custom(perfmodel.CPUProfile{
		Name:               p.Name,
		MaxCores:           p.Cores,
		FlopsPerCorePerGHz: p.FlopsPerCorePerGHz,
		MinFreqGHz:         p.MinFrequencyGHz,
		MaxFreqGHz:         p.MaxFrequencyGHz,
		MemBytesPerSec:     p.MemBytesPerSec,
		BytesPerFLOP:       p.BytesPerFLOP,
		BatchSetupSec:      p.BatchSetupSec,
		MemBatchKnee:       p.MemBatchKnee,
		MemPressureFactor:  p.MemPressureFactor,
		IdlePowerW:         p.IdlePowerW,
		CorePowerW:         p.CorePowerW,
	})
}
