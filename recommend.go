package edgetune

import (
	"context"
	"errors"

	"edgetune/internal/core"
	"edgetune/internal/device"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

// RecommendRequest asks for inference deployment recommendations for an
// already-tuned model across several edge devices — the paper's
// multi-device deployment scenario (§1).
type RecommendRequest struct {
	// Workload identifies the model family: IC, SR, NLP, or OD.
	Workload string
	// ModelConfig is the tuned configuration (e.g. a Report.BestConfig).
	ModelConfig map[string]float64
	// Devices lists the target devices; empty means all built-in ones.
	Devices []string
	// Metric is the inference objective (default MetricRuntime).
	Metric Metric
	// Trials is the number of inference configurations explored per
	// device (default 24).
	Trials int
	// StorePath optionally persists results across calls.
	StorePath string
	// Seed drives determinism.
	Seed uint64
}

// Recommend tunes the inference configuration of a trained model for
// each requested device and returns one recommendation per device,
// sorted by device name.
func Recommend(ctx context.Context, req RecommendRequest) ([]InferenceRecommendation, error) {
	if req.Workload == "" {
		return nil, errors.New("edgetune: recommend needs a workload")
	}
	w, err := workload.New(req.Workload, req.Seed^0x9e3779b9)
	if err != nil {
		return nil, err
	}
	cfg := configFromMap(req.ModelConfig)
	if _, _, err := w.PaperCost(cfg); err != nil {
		return nil, err
	}

	names := req.Devices
	if len(names) == 0 {
		names = Devices()
	}
	devs := make([]device.Device, 0, len(names))
	for _, n := range names {
		d, err := device.ByName(n)
		if err != nil {
			return nil, err
		}
		devs = append(devs, d)
	}

	var st *store.Store
	if req.StorePath != "" {
		st, err = loadOrNewStore(req.StorePath)
		if err != nil {
			return nil, err
		}
	} else {
		st = store.New()
	}

	entries, err := core.RecommendForDevices(ctx, w, cfg, devs, core.InferenceServerOptions{
		Metric: core.Metric(req.Metric),
		Trials: req.Trials,
		Store:  st,
		Seed:   req.Seed,
	})
	if err != nil {
		return nil, err
	}
	if req.StorePath != "" {
		if err := st.Save(req.StorePath); err != nil {
			return nil, err
		}
	}

	recs := make([]InferenceRecommendation, len(entries))
	for i, e := range entries {
		recs[i] = InferenceRecommendation{
			Device:           e.Device,
			BatchSize:        int(e.Config[workload.ParamInferBatch]),
			Cores:            int(e.Config[workload.ParamCores]),
			FrequencyGHz:     e.Config[workload.ParamFreq],
			Throughput:       e.Throughput,
			EnergyPerSampleJ: e.EnergyPerSampleJ,
			LatencySeconds:   e.LatencySeconds,
		}
	}
	return recs, nil
}
