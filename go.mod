module edgetune

go 1.22
